"""Fuzz the attribute index against direct predicate evaluation.

Property: for any set of registered predicates on one attribute and any
probe value, the index's net fulfilled entries (positives minus
negatives) are exactly the entries whose predicate accepts the value.
This is the correctness core of the counting engine, independent of
subscription structure.

The same corpus also drives the full engines (parametrized over the
unsharded counting matcher and the sharded path, serial and threaded):
single-predicate subscriptions over random predicates, matched against
random events under unregister/replace churn, must agree with direct
per-predicate evaluation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.predicate_index import AttributeIndex
from repro.subscriptions.nodes import PredicateLeaf
from repro.subscriptions.subscription import Subscription

from tests import strategies


def _net_entries(index, value):
    positives, negatives = [], []
    index.collect(value, positives, negatives)
    flat_pos = [int(x) for array in positives for x in array]
    result = list(flat_pos)
    for array in negatives:
        for entry in array:
            result.remove(int(entry))
    return sorted(result)


@given(
    st.lists(strategies.numeric_predicates(), min_size=1, max_size=12),
    st.sampled_from(strategies.NUMERIC_VALUES + [True, False, "zap"]),
)
@settings(max_examples=200, deadline=None)
def test_numeric_attribute_index_matches_direct_evaluation(predicates, value):
    attribute = "na"
    index = AttributeIndex(attribute)
    rebased = []
    for entry, predicate in enumerate(predicates):
        rebased.append(
            type(predicate)(attribute, predicate.operator, predicate.value)
        )
        index.add(rebased[-1], entry)
    index.finalize()
    expected = sorted(
        entry
        for entry, predicate in enumerate(rebased)
        if predicate.test(value)
    )
    assert _net_entries(index, value) == expected


@given(
    st.lists(strategies.string_predicates(), min_size=1, max_size=12),
    st.sampled_from(strategies.STRING_VALUES + [3, True]),
)
@settings(max_examples=200, deadline=None)
def test_string_attribute_index_matches_direct_evaluation(predicates, value):
    attribute = "sa"
    index = AttributeIndex(attribute)
    rebased = []
    for entry, predicate in enumerate(predicates):
        rebased.append(
            type(predicate)(attribute, predicate.operator, predicate.value)
        )
        index.add(rebased[-1], entry)
    index.finalize()
    expected = sorted(
        entry
        for entry, predicate in enumerate(rebased)
        if predicate.test(value)
    )
    assert _net_entries(index, value) == expected


@pytest.mark.parametrize(
    "make_matcher",
    strategies.MATCHER_FACTORIES,
    ids=strategies.MATCHER_FACTORY_IDS,
)
@given(
    predicates=st.lists(strategies.predicates(), min_size=1, max_size=12),
    event=strategies.events(),
)
@settings(max_examples=50, deadline=None)
def test_matchers_track_direct_predicate_evaluation(
    make_matcher, predicates, event
):
    """Engine-level fuzz: the fuzz corpus through the (sharded) matcher.

    Every predicate becomes a single-leaf subscription; the matcher's
    id lists must equal direct per-predicate evaluation — after
    registration, after a no-op replace of every live subscription, and
    after unregistering every odd id (which hits shards the even ids
    never touched, including empty ones).
    """
    matcher = make_matcher()
    try:
        for sub_id, predicate in enumerate(predicates):
            matcher.register(Subscription(sub_id, PredicateLeaf(predicate)))

        def expected(live_ids):
            return sorted(
                sub_id
                for sub_id in live_ids
                if predicates[sub_id].evaluate(event)
            )

        live = list(range(len(predicates)))
        assert matcher.match(event) == expected(live)
        # Replace that changes nothing: same tree, same id, same shard.
        for sub_id in live:
            matcher.replace(
                Subscription(sub_id, PredicateLeaf(predicates[sub_id]))
            )
        assert matcher.match_batch([event]) == [expected(live)]
        for sub_id in [sub_id for sub_id in live if sub_id % 2]:
            matcher.unregister(sub_id)
            live.remove(sub_id)
        assert matcher.match_batch([event, event]) == [expected(live)] * 2
    finally:
        # The threaded factory owns a worker pool; one leaked pool per
        # hypothesis example would pile up idle threads.
        matcher.close()


@given(
    st.lists(strategies.bool_predicates(), min_size=1, max_size=8),
    st.sampled_from([True, False, 0, 1, "x"]),
)
@settings(max_examples=100, deadline=None)
def test_bool_attribute_index_matches_direct_evaluation(predicates, value):
    attribute = "ba"
    index = AttributeIndex(attribute)
    rebased = []
    for entry, predicate in enumerate(predicates):
        rebased.append(
            type(predicate)(attribute, predicate.operator, predicate.value)
        )
        index.add(rebased[-1], entry)
    index.finalize()
    expected = sorted(
        entry
        for entry, predicate in enumerate(rebased)
        if predicate.test(value)
    )
    assert _net_entries(index, value) == expected
