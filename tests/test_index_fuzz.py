"""Fuzz the attribute index against direct predicate evaluation.

Property: for any set of registered predicates on one attribute and any
probe value, the index's net fulfilled entries (positives minus
negatives) are exactly the entries whose predicate accepts the value.
This is the correctness core of the counting engine, independent of
subscription structure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.predicate_index import AttributeIndex

from tests import strategies


def _net_entries(index, value):
    positives, negatives = [], []
    index.collect(value, positives, negatives)
    flat_pos = [int(x) for array in positives for x in array]
    result = list(flat_pos)
    for array in negatives:
        for entry in array:
            result.remove(int(entry))
    return sorted(result)


@given(
    st.lists(strategies.numeric_predicates(), min_size=1, max_size=12),
    st.sampled_from(strategies.NUMERIC_VALUES + [True, False, "zap"]),
)
@settings(max_examples=200, deadline=None)
def test_numeric_attribute_index_matches_direct_evaluation(predicates, value):
    attribute = "na"
    index = AttributeIndex(attribute)
    rebased = []
    for entry, predicate in enumerate(predicates):
        rebased.append(
            type(predicate)(attribute, predicate.operator, predicate.value)
        )
        index.add(rebased[-1], entry)
    index.finalize()
    expected = sorted(
        entry
        for entry, predicate in enumerate(rebased)
        if predicate.test(value)
    )
    assert _net_entries(index, value) == expected


@given(
    st.lists(strategies.string_predicates(), min_size=1, max_size=12),
    st.sampled_from(strategies.STRING_VALUES + [3, True]),
)
@settings(max_examples=200, deadline=None)
def test_string_attribute_index_matches_direct_evaluation(predicates, value):
    attribute = "sa"
    index = AttributeIndex(attribute)
    rebased = []
    for entry, predicate in enumerate(predicates):
        rebased.append(
            type(predicate)(attribute, predicate.operator, predicate.value)
        )
        index.add(rebased[-1], entry)
    index.finalize()
    expected = sorted(
        entry
        for entry, predicate in enumerate(rebased)
        if predicate.test(value)
    )
    assert _net_entries(index, value) == expected


@given(
    st.lists(strategies.bool_predicates(), min_size=1, max_size=8),
    st.sampled_from([True, False, 0, 1, "x"]),
)
@settings(max_examples=100, deadline=None)
def test_bool_attribute_index_matches_direct_evaluation(predicates, value):
    attribute = "ba"
    index = AttributeIndex(attribute)
    rebased = []
    for entry, predicate in enumerate(predicates):
        rebased.append(
            type(predicate)(attribute, predicate.operator, predicate.value)
        )
        index.add(rebased[-1], entry)
    index.finalize()
    expected = sorted(
        entry
        for entry, predicate in enumerate(rebased)
        if predicate.test(value)
    )
    assert _net_entries(index, value) == expected
