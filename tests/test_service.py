"""Unit tests for the service layer: sessions, handles, sinks, ingress."""

import pytest

from repro.errors import DeliveryError, RoutingError, ServiceError
from repro.events import Event
from repro.routing.network import BrokerNetwork
from repro.routing.topology import line_topology
from repro.service import (
    CallbackSink,
    CollectingSink,
    CountingSink,
    DeliverySink,
    Ingress,
    Notification,
    PubSubService,
    SubscriptionHandle,
)
from repro.subscriptions.builder import And, P


def make_service(brokers=2, max_batch=64):
    return PubSubService(topology=line_topology(brokers), max_batch=max_batch)


class TestSessions:
    def test_connect_subscribe_publish_deliver(self):
        service = make_service()
        alice = service.connect("b1", "alice")
        handle = alice.subscribe(And(P("x") == 1, P("y") == 2))
        assert isinstance(handle, SubscriptionHandle)
        service.publish("b0", Event({"x": 1, "y": 2}))
        service.publish("b0", Event({"x": 1}))
        assert service.flush() == 2
        notes = alice.sink.notifications
        assert [note.subscription_id for note in notes] == [handle.id]
        assert notes[0].client == "alice"
        assert notes[0].broker_id == "b1"
        assert notes[0].event == Event({"x": 1, "y": 2})

    def test_ids_are_server_assigned_and_distinct(self):
        service = make_service()
        session = service.connect("b0", "alice")
        first = session.subscribe(P("x") == 1)
        second = session.subscribe(P("x") == 2)
        assert first.id != second.id
        assert first.active and second.active
        assert set(session.handles) == {first, second}

    def test_duplicate_session_rejected(self):
        service = make_service()
        service.connect("b0", "alice")
        with pytest.raises(ServiceError):
            service.connect("b0", "alice")
        # Same client at a different broker is a different session.
        service.connect("b1", "alice")

    def test_unknown_broker_rejected(self):
        service = make_service()
        with pytest.raises(RoutingError):
            service.connect("nope", "alice")
        with pytest.raises(RoutingError):
            service.publish("nope", Event({"x": 1}))

    def test_session_close_withdraws_subscriptions(self):
        service = make_service()
        alice = service.connect("b0", "alice")
        handle = alice.subscribe(P("x") == 1)
        alice.close()
        assert not handle.active
        assert alice.closed
        assert service.network.brokers["b0"].entries == {}
        # The slot is free for a reconnect.
        service.connect("b0", "alice")
        with pytest.raises(ServiceError):
            alice.subscribe(P("x") == 2)

    def test_session_context_manager(self):
        service = make_service()
        with service.connect("b0", "alice") as alice:
            alice.subscribe(P("x") == 1)
        assert alice.closed

    def test_service_close_releases_hook(self):
        service = make_service()
        service.connect("b0", "alice").subscribe(P("x") == 1)
        service.close()
        with pytest.raises(ServiceError):
            service.connect("b0", "bob")
        # The network is a plain substrate again: a new service attaches.
        PubSubService(service.network)


class TestHandles:
    def test_unsubscribe_stops_deliveries(self):
        service = make_service()
        alice = service.connect("b0", "alice")
        handle = alice.subscribe(P("x") == 1)
        service.publish("b0", Event({"x": 1}))
        handle.unsubscribe()  # flushes the pending event first
        service.publish("b0", Event({"x": 1}))
        service.flush()
        assert len(alice.sink.notifications) == 1
        assert not handle.active
        with pytest.raises(ServiceError):
            handle.unsubscribe()
        with pytest.raises(ServiceError):
            handle.replace(P("x") == 2)

    def test_replace_keeps_identity(self):
        service = make_service()
        alice = service.connect("b0", "alice")
        handle = alice.subscribe(P("x") == 1)
        original_id = handle.id
        handle.replace(P("x") == 2)
        assert handle.id == original_id
        assert handle.active
        service.publish("b0", Event({"x": 1}))
        service.publish("b0", Event({"x": 2}))
        service.flush()
        events = [note.event for note in alice.sink.notifications]
        assert events == [Event({"x": 2})]

    def test_replace_floods_all_brokers(self):
        service = make_service(brokers=3)
        alice = service.connect("b2", "alice")
        handle = alice.subscribe(P("x") == 1)
        before = service.network.report().subscription_messages
        handle.replace(P("x") == 2)
        assert service.network.report().subscription_messages > before
        # The replaced tree matches from the far end of the line.
        service.publish("b0", Event({"x": 2}))
        service.flush()
        assert [note.event for note in alice.sink.notifications] == [
            Event({"x": 2})
        ]


class TestSinks:
    def test_per_handle_sink_overrides_session_sink(self):
        service = make_service()
        alice = service.connect("b0", "alice")
        special = CollectingSink()
        plain = alice.subscribe(P("x") == 1)
        routed = alice.subscribe(P("x") == 2, sink=special)
        service.publish("b0", Event({"x": 1}))
        service.publish("b0", Event({"x": 2}))
        service.flush()
        assert [n.subscription_id for n in alice.sink.notifications] == [plain.id]
        assert [n.subscription_id for n in special.notifications] == [routed.id]

    def test_callback_and_counting_sinks(self):
        service = make_service()
        seen = []
        service.connect("b0", "cb", sink=CallbackSink(seen.append))
        counter = CountingSink()
        counting_session = service.connect("b0", "count", sink=counter)
        service.sessions[0].subscribe(P("x") == 1)
        handle = counting_session.subscribe(P("x") == 1)
        for _ in range(3):
            service.publish("b0", Event({"x": 1}))
        service.flush()
        assert len(seen) == 3 and isinstance(seen[0], Notification)
        assert counter.total == 3
        assert counter.by_subscription == {handle.id: 3}
        counter.clear()
        assert counter.total == 0 and counter.by_subscription == {}

    def test_sinks_satisfy_protocol(self):
        assert isinstance(CollectingSink(), DeliverySink)
        assert isinstance(CallbackSink(lambda note: None), DeliverySink)
        assert isinstance(CountingSink(), DeliverySink)

    def test_collecting_sink_helpers(self):
        sink = CollectingSink()
        sink.deliver(Notification(Event({"x": 1}), 0, "a", "b0", 1))
        assert len(sink) == 1
        assert sink.events == [Event({"x": 1})]
        sink.clear()
        assert len(sink) == 0


class TestIngress:
    def test_max_batch_triggers_flush(self):
        service = make_service(max_batch=3)
        alice = service.connect("b0", "alice")
        alice.subscribe(P("x") == 1)
        assert not service.publish("b0", Event({"x": 1}))
        assert not service.publish("b0", Event({"x": 1}))
        assert service.ingress.pending_count == 2
        assert not alice.sink.notifications
        assert service.publish("b0", Event({"x": 1}))  # third fills the batch
        assert service.ingress.pending_count == 0
        assert len(alice.sink.notifications) == 3

    def test_flush_on_subscribe_churn_preserves_table_snapshot(self):
        service = make_service(max_batch=100)
        alice = service.connect("b0", "alice")
        service.publish("b0", Event({"x": 1}))
        # The pending event predates this subscription: it must not be
        # delivered to it (the churn forces a flush first).
        handle = alice.subscribe(P("x") == 1)
        assert service.ingress.pending_count == 0
        assert alice.sink.notifications == []
        service.publish("b0", Event({"x": 1}))
        service.flush()
        assert [n.subscription_id for n in alice.sink.notifications] == [handle.id]

    def test_grouping_by_origin_preserves_per_origin_order(self):
        service = make_service(brokers=2, max_batch=100)
        alice = service.connect("b0", "alice")
        alice.subscribe(P("x") >= 0)
        for position, origin in enumerate(["b0", "b1", "b0", "b1"]):
            service.publish(origin, Event({"x": position}))
        service.flush()
        by_origin = {}
        for note in alice.sink.notifications:
            by_origin.setdefault(note.event["x"] % 2, []).append(note.event["x"])
        assert by_origin == {0: [0, 2], 1: [1, 3]}

    def test_sequences_are_submission_positions_at_any_batch_size(self):
        """The sequence contract: batching never changes an event's number."""
        origins = ["b0", "b1", "b0", "b1", "b1", "b0"]
        signatures = []
        for max_batch in (1, 2, 100):
            service = make_service(brokers=2, max_batch=max_batch)
            alice = service.connect("b0", "alice")
            alice.subscribe(P("x") >= 0)
            for position, origin in enumerate(origins):
                service.publish(origin, Event({"x": position}))
            service.flush()
            signatures.append(sorted(
                (note.sequence, note.event["x"])
                for note in alice.sink.notifications
            ))
        assert signatures[0] == signatures[1] == signatures[2]
        # And the sequence *is* the submission position.
        assert signatures[0] == [(i, i) for i in range(len(origins))]

    def test_failed_flush_requeues_unattempted_groups(self):
        service = make_service(brokers=2, max_batch=100)

        class ExplodingSink:
            def __init__(self):
                self.armed = True

            def deliver(self, notification):
                if self.armed:
                    raise RuntimeError("boom")

        sink = ExplodingSink()
        alice = service.connect("b0", "alice", sink=sink)
        alice.subscribe(P("x") >= 0)
        service.publish("b0", Event({"x": 0}))
        service.publish("b1", Event({"x": 1}))
        with pytest.raises(DeliveryError):
            service.flush()
        # The b0 group was attempted (its sink failure was contained and
        # re-raised after dispatch); the b1 group was never attempted
        # and must still be buffered.
        assert service.ingress.pending_count == 1
        sink.armed = False
        collector = CollectingSink()
        bob_session = service.connect("b0", "bob", sink=collector)
        # Subscribing flushes the requeued event first: bob must not see it.
        bob_session.subscribe(P("x") >= 0)
        assert service.ingress.pending_count == 0
        assert collector.notifications == []

    def test_sequence_numbers_are_per_event(self):
        service = make_service(max_batch=100)
        alice = service.connect("b0", "alice")
        alice.subscribe(P("x") == 1)
        service.publish("b0", Event({"x": 0}))  # no match, still sequenced
        service.publish("b0", Event({"x": 1}))
        service.flush()
        assert service.publish_count == 2
        assert [n.sequence for n in alice.sink.notifications] == [1]

    def test_invalid_max_batch(self):
        with pytest.raises(ServiceError):
            Ingress(BrokerNetwork(line_topology(1)), max_batch=0)

    def test_publish_batch_flushes_pending_first(self):
        service = make_service(max_batch=100)
        alice = service.connect("b0", "alice")
        alice.subscribe(P("x") >= 0)
        service.publish("b0", Event({"x": 0}))
        results = service.publish_batch("b0", [Event({"x": 1})])
        assert len(results) == 1 and results[0].deliveries
        sequences = [n.sequence for n in alice.sink.notifications]
        assert sequences == [0, 1]  # pending event dispatched first


class TestConstruction:
    def test_requires_network_or_topology(self):
        with pytest.raises(ServiceError):
            PubSubService()
        with pytest.raises(ServiceError):
            PubSubService(
                BrokerNetwork(line_topology(1)), topology=line_topology(1)
            )

    def test_single_delivery_hook_per_network(self):
        network = BrokerNetwork(line_topology(1))
        PubSubService(network)
        with pytest.raises(RoutingError):
            PubSubService(network)


class TestSubstrate:
    """The network-level features the service layer is built on."""

    def test_allocate_subscription_id_is_not_deprecated(self, recwarn):
        network = BrokerNetwork(line_topology(2))
        subscription_id = network.allocate_subscription_id()
        network.subscribe("b0", "alice", P("x") == 1, subscription_id)
        assert not [
            warning
            for warning in recwarn.list
            if issubclass(warning.category, DeprecationWarning)
        ]
        # A reserved id is accepted exactly once.
        with pytest.raises(RoutingError):
            network.subscribe("b0", "bob", P("x") == 1, subscription_id)

    def test_caller_chosen_ids_warn(self):
        network = BrokerNetwork(line_topology(2))
        with pytest.deprecated_call():
            network.subscribe("b0", "alice", P("x") == 1, subscription_id=7)

    def test_allocation_interleaves_with_reservations(self):
        network = BrokerNetwork(line_topology(1))
        first = network.allocate_subscription_id()
        second = network.allocate_subscription_id()
        assert second > first
        network.subscribe("b0", "a", P("x") == 1, subscription_id=second)
        network.subscribe("b0", "a", P("x") == 1, subscription_id=first)
        auto = network.subscribe("b0", "a", P("x") == 1)
        assert auto.id > second

    def test_replace_subscription_unknown_id(self):
        network = BrokerNetwork(line_topology(1))
        with pytest.raises(RoutingError):
            network.replace_subscription(3, P("x") == 1)

    def test_direct_substrate_publish_reaches_sinks(self):
        service = make_service()
        alice = service.connect("b1", "alice")
        handle = alice.subscribe(P("x") == 1)
        result = service.network.publish("b0", Event({"x": 1}))
        assert [d.subscription_id for d in result.deliveries] == [handle.id]
        assert [n.subscription_id for n in alice.sink.notifications] == [handle.id]

    def test_deliveries_without_session_are_dropped(self):
        service = make_service()
        # Subscribe through the substrate: no session to deliver to.
        sid = service.network.allocate_subscription_id()
        service.network.subscribe("b0", "ghost", P("x") == 1, sid)
        result = service.network.publish("b0", Event({"x": 1}))
        assert result.deliveries  # the publisher still sees the match


class TestShardedService:
    """Flake-proofing pins: a threaded sharded engine must not perturb
    the service's observable stream.

    The ingress flush grouping, per-sink notification order, and
    delivery sequence numbers are all asserted twice — against the
    unsharded reference stream *and* against explicit expected tuples —
    so any future scheduling-dependent behaviour in the shard fan-out
    shows up as a deterministic assertion failure, not a flake.
    """

    def _stream(self, shards):
        service = PubSubService(
            topology=line_topology(3), max_batch=3, shards=shards,
            executor="threads" if shards else "serial",
        )
        with service:
            alice = service.connect("b2", "alice")
            alice.subscribe(P("x") >= 1)   # id 0
            alice.subscribe(P("x") >= 3)   # id 1
            bob = service.connect("b1", "bob")
            bob.subscribe(P("x") <= 4)     # id 2
            for position, origin in enumerate(["b0", "b1", "b2", "b0", "b2"]):
                service.publish(origin, Event({"x": position}))
            service.flush()
            return [
                [
                    (note.sequence, note.subscription_id, note.event["x"])
                    for note in session.sink.notifications
                ]
                for session in (alice, bob)
            ]

    def test_sharded_stream_is_pinned_and_identical_to_unsharded(self):
        unsharded = self._stream(shards=None)
        sharded = self._stream(shards=4)
        assert sharded == unsharded
        # Explicit pins (sequence == submission position; per-sink order
        # follows flush grouping: origins in first-submission order,
        # submission order within each origin, sub ids ascending within
        # one event's deliveries at one broker).
        assert unsharded[0] == [
            (1, 0, 1), (2, 0, 2), (3, 0, 3), (3, 1, 3), (4, 0, 4), (4, 1, 4),
        ]
        assert unsharded[1] == [
            (0, 2, 0), (1, 2, 1), (2, 2, 2), (3, 2, 3), (4, 2, 4),
        ]

    def test_shards_with_explicit_network_rejected(self):
        network = BrokerNetwork(line_topology(2))
        with pytest.raises(ServiceError):
            PubSubService(network=network, shards=2)

    def test_executor_with_explicit_network_rejected(self):
        network = BrokerNetwork(line_topology(2))
        with pytest.raises(ServiceError):
            PubSubService(network=network, executor="serial")

    def test_close_shuts_down_shard_pools(self):
        service = PubSubService(topology=line_topology(2), shards=2)
        alice = service.connect("b1", "alice")
        alice.subscribe(P("x") >= 0)
        service.publish("b0", Event({"x": 1}))
        service.flush()
        matchers = [broker.matcher for broker in service.network.brokers.values()]
        assert any(matcher._executor is not None for matcher in matchers)
        service.close()
        assert all(matcher._executor is None for matcher in matchers)
        # The substrate stays usable: pools rebuild lazily on demand
        # (close() withdrew the session's subscriptions, so register a
        # substrate-level one to see a delivery again).
        network = service.network
        network.subscribe(
            "b1", "bob", P("x") >= 0, network.allocate_subscription_id()
        )
        assert network.publish("b0", Event({"x": 2})).deliveries
        network.close()
        assert all(matcher._executor is None for matcher in matchers)


class TestDeliveryContainment:
    """Sink failures in ``Ingress.flush`` are contained per-sink.

    Regression tests for the error-containment contract: one raising
    sink must not starve the other sinks of the batch, must not wedge
    the ingress, and must not leave stale sequence announcements behind.
    """

    class ExplodingSink:
        def __init__(self, fail_times=None):
            self.armed = True
            self.fail_times = fail_times
            self.notifications = []

        def deliver(self, notification):
            if self.armed and (
                self.fail_times is None or self.fail_times > 0
            ):
                if self.fail_times is not None:
                    self.fail_times -= 1
                raise RuntimeError("boom")
            self.notifications.append(notification)

    def test_remaining_sinks_receive_batch_when_one_raises(self):
        service = make_service(brokers=2, max_batch=100)
        bad = self.ExplodingSink()
        good = CollectingSink()
        alice = service.connect("b0", "alice", sink=bad)
        bob = service.connect("b0", "bob", sink=good)
        alice.subscribe(P("x") >= 0)
        bob.subscribe(P("x") >= 0)
        service.publish("b0", Event({"x": 0}))
        service.publish("b0", Event({"x": 1}))
        with pytest.raises(DeliveryError) as excinfo:
            service.flush()
        # Both events' deliveries to the good sink happened even though
        # the bad sink raised on each of them.
        assert [n.event["x"] for n in good.notifications] == [0, 1]
        assert len(excinfo.value.failures) == 2
        assert all(
            isinstance(exc, RuntimeError)
            for _, exc in excinfo.value.failures
        )

    def test_ingress_stays_usable_after_sink_failure(self):
        service = make_service(brokers=2, max_batch=100)
        bad = self.ExplodingSink()
        alice = service.connect("b0", "alice", sink=bad)
        alice.subscribe(P("x") >= 0)
        service.publish("b0", Event({"x": 0}))
        with pytest.raises(DeliveryError):
            service.flush()
        bad.armed = False
        # The failed flush consumed its batch; later publishes flow
        # through the same ingress with fresh, correct sequences.
        service.publish("b0", Event({"x": 1}))
        assert service.flush() == 1
        assert [n.event["x"] for n in bad.notifications] == [1]
        # Sequences stay monotonic across the failed flush: the failed
        # event consumed sequence 0, the delivered one got 1.
        assert [n.sequence for n in bad.notifications] == [1]

    def test_failed_flush_clears_stale_sequence_announcements(self):
        # Regression: a flush whose dispatch raises used to leave its
        # sequence announcements queued, so the *next* flush would stamp
        # the old sequences onto new events.
        service = make_service(brokers=2, max_batch=100)
        bad = self.ExplodingSink(fail_times=1)
        alice = service.connect("b0", "alice", sink=bad)
        alice.subscribe(P("x") >= 0)
        for x in range(3):
            service.publish("b0", Event({"x": x}))
        with pytest.raises(DeliveryError):
            service.flush()
        service.publish("b0", Event({"x": 99}))
        service.flush()
        # The post-failure event must carry its own (allocated-at-submit)
        # sequence, not a stale announcement from the failed batch.
        assert [n.event["x"] for n in bad.notifications] == [1, 2, 99]
        assert [n.sequence for n in bad.notifications] == [1, 2, 3]

    def test_on_sink_error_handler_swallows_failures(self):
        seen = []
        service = PubSubService(
            topology=line_topology(2),
            max_batch=100,
            on_sink_error=lambda notification, exc: seen.append(
                (notification.event["x"], type(exc).__name__)
            ),
        )
        bad = self.ExplodingSink()
        good = CollectingSink()
        alice = service.connect("b0", "alice", sink=bad)
        bob = service.connect("b0", "bob", sink=good)
        alice.subscribe(P("x") >= 0)
        bob.subscribe(P("x") >= 0)
        service.publish("b0", Event({"x": 7}))
        # With a handler installed the flush does not raise.
        assert service.flush() == 1
        assert seen == [(7, "RuntimeError")]
        assert [n.event["x"] for n in good.notifications] == [7]


class TestSessionTokens:
    """The resume registry: ``connect(token=...)`` + ``resume(token)``.

    This is the service-side hook the network transport uses to
    reattach a reconnecting client to its still-open session.
    """

    def test_resume_returns_the_registered_session(self):
        service = make_service()
        session = service.connect("b0", "alice", token="tok-a")
        assert session.token == "tok-a"
        assert service.resume("tok-a") is session

    def test_duplicate_token_is_refused(self):
        service = make_service()
        service.connect("b0", "alice", token="tok-a")
        with pytest.raises(ServiceError):
            service.connect("b1", "bob", token="tok-a")

    def test_unknown_token_is_refused(self):
        service = make_service()
        with pytest.raises(ServiceError):
            service.resume("never-issued")

    def test_closed_session_cannot_be_resumed(self):
        service = make_service()
        session = service.connect("b0", "alice", token="tok-a")
        session.close()
        with pytest.raises(ServiceError):
            service.resume("tok-a")
        # The token is free again after the session closed.
        other = service.connect("b0", "alice", token="tok-a")
        assert service.resume("tok-a") is other

    def test_tokenless_sessions_stay_unregistered(self):
        service = make_service()
        session = service.connect("b0", "alice")
        assert session.token is None
