"""Tests for shared utilities: heap, timing, tables."""

import time

import pytest

from repro.util.heap import StableHeap
from repro.util.tables import ascii_plot, format_table
from repro.util.timing import Stopwatch, time_call


class TestStableHeap:
    def test_pops_in_key_order(self):
        heap = StableHeap()
        heap.push(3, "c")
        heap.push(1, "a")
        heap.push(2, "b")
        assert [heap.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        heap = StableHeap()
        heap.push(1, "first")
        heap.push(1, "second")
        assert heap.pop()[1] == "first"
        assert heap.pop()[1] == "second"

    def test_tuple_keys(self):
        heap = StableHeap()
        heap.push((0.5, -1), "x")
        heap.push((0.5, -2), "y")
        assert heap.pop()[1] == "y"

    def test_payloads_never_compared(self):
        class Opaque:
            __lt__ = None

        heap = StableHeap()
        heap.push(1, Opaque())
        heap.push(1, Opaque())
        heap.pop()  # would raise if payloads were compared

    def test_peek(self):
        heap = StableHeap()
        heap.push(2, "b")
        heap.push(1, "a")
        assert heap.peek() == (1, "a")
        assert heap.peek_key() == 1
        assert len(heap) == 2

    def test_empty_behaviour(self):
        heap = StableHeap()
        assert not heap
        assert heap.peek_key() is None
        with pytest.raises(IndexError):
            heap.pop()

    def test_clear_and_items(self):
        heap = StableHeap()
        heap.push(1, "a")
        heap.push(2, "b")
        assert sorted(payload for _k, payload in heap.items()) == ["a", "b"]
        heap.clear()
        assert len(heap) == 0


class TestStopwatch:
    def test_accumulates_laps(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch:
                time.sleep(0.001)
        assert watch.laps == 3
        assert watch.elapsed >= 0.003
        assert watch.mean == pytest.approx(watch.elapsed / 3)

    def test_nested_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.laps == 0
        assert watch.elapsed == 0.0
        assert watch.mean == 0.0

    def test_time_call(self):
        result, elapsed = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0


class TestTables:
    def test_format_table_aligns_columns(self):
        text = format_table(["x", "value"], [[1, 10.5], [22, 3.25]])
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert "value" in lines[0]
        assert len(lines) == 4

    def test_format_table_formats_floats(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.123457" in text

    def test_ascii_plot_renders_series(self):
        text = ascii_plot(
            {"a": [0.0, 1.0, 2.0], "b": [2.0, 1.0, 0.0]},
            xs=[0.0, 0.5, 1.0],
            width=20,
            height=8,
            title="demo",
        )
        assert "demo" in text
        assert "legend" in text
        assert "*" in text and "o" in text

    def test_ascii_plot_empty(self):
        assert ascii_plot({}, xs=[]) == "(empty plot)"

    def test_ascii_plot_constant_series(self):
        text = ascii_plot({"a": [1.0, 1.0]}, xs=[0.0, 1.0], width=10, height=4)
        assert "legend" in text
