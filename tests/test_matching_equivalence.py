"""Property tests: the counting engine agrees with the naive oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.counting import CountingMatcher
from repro.matching.naive import NaiveMatcher
from repro.subscriptions.subscription import Subscription

from tests import strategies


@given(
    st.lists(strategies.trees(), min_size=1, max_size=8),
    st.lists(strategies.events(), min_size=1, max_size=8),
)
@settings(max_examples=120, deadline=None)
def test_counting_equals_naive_on_random_workloads(trees, events):
    counting = CountingMatcher()
    naive = NaiveMatcher()
    for index, tree in enumerate(trees):
        subscription = Subscription(index, tree)
        counting.register(subscription)
        naive.register(subscription)
    for event in events:
        assert sorted(counting.match(event)) == sorted(naive.match(event))


@given(strategies.trees(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_counting_agrees_after_replacement(tree, events):
    """Replacing a subscription behaves as if it had been registered fresh."""
    counting = CountingMatcher()
    counting.register(Subscription(0, tree))
    counting.match(events[0])  # force a build on the old tree
    replacement = Subscription(0, tree)
    counting.replace(replacement)
    oracle = NaiveMatcher()
    oracle.register(replacement)
    for event in events:
        assert sorted(counting.match(event)) == sorted(oracle.match(event))


def test_counting_equals_naive_on_auction_workload(
    workload, auction_events, auction_subscriptions
):
    """End-to-end agreement on the realistic workload (first 120 subs)."""
    counting = CountingMatcher()
    naive = NaiveMatcher()
    for subscription in auction_subscriptions[:120]:
        counting.register(subscription)
        naive.register(subscription)
    for event in auction_events.events[:150]:
        assert sorted(counting.match(event)) == sorted(naive.match(event))
