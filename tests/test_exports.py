"""The package surface: ``repro.__all__`` is complete, public, and live."""

import inspect

import repro
import repro.service


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_all_is_sorted_and_unique():
    assert len(set(repro.__all__)) == len(repro.__all__)
    assert list(repro.__all__) == sorted(
        repro.__all__, key=lambda name: (name.lower(), name)
    )


def test_nothing_private_leaks():
    assert all(not name.startswith("_") for name in repro.__all__)


def test_star_import_matches_all():
    namespace = {}
    exec("from repro import *", namespace)
    imported = {name for name in namespace if not name.startswith("_")}
    assert imported == set(repro.__all__)


def test_service_surface_is_exported():
    for name in repro.service.__all__:
        assert name in repro.__all__, name
        assert getattr(repro, name) is getattr(repro.service, name)


def test_exports_are_not_modules():
    # Exporting a submodule by accident would leak the internal layout.
    for name in repro.__all__:
        assert not inspect.ismodule(getattr(repro, name)), name


def test_transport_surface_is_exported():
    import repro.transport

    assert list(repro.transport.__all__) == sorted(
        repro.transport.__all__, key=lambda name: (name.lower(), name)
    )
    for name in repro.transport.__all__:
        assert getattr(repro.transport, name, None) is not None, name
    # The headline transport names are re-exported at the top level.
    for name in (
        "PubSubServer",
        "PubSubClient",
        "RemoteSubscriptionHandle",
        "FrameDecoder",
        "encode_frame",
        "ENVELOPE_TYPES",
        "PROTOCOL_VERSION",
        "TransportError",
        "ProtocolError",
    ):
        assert name in repro.__all__, name
