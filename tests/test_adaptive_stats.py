"""Unit tests for the online statistics sketches and the conditions probe.

The online accumulator must agree with the offline
``EventStatistics.from_events`` on the same sample whenever its sketches
have not saturated (no top-K eviction, no histogram merge), and stay a
close approximation once they have.
"""

from __future__ import annotations

import threading

import pytest

from repro.adaptive import (
    OnlineEventStatistics,
    StreamingHistogram,
    SystemConditionsProbe,
    TopKCounter,
)
from repro.errors import PruningError, SelectivityError
from repro.events import Event
from repro.routing.network import BrokerNetwork
from repro.routing.topology import line_topology
from repro.selectivity.statistics import EventStatistics
from repro.subscriptions.builder import And, P
from repro.util.rng import make_rng


class TestTopKCounter:
    def test_exact_below_capacity(self):
        counter = TopKCounter(8)
        for value in ["a", "b", "a", "c", "a", "b"]:
            counter.observe(("s", value))
        assert counter.exact
        assert counter.counts == {("s", "a"): 3, ("s", "b"): 2, ("s", "c"): 1}

    def test_counts_total_preserved_across_evictions(self):
        counter = TopKCounter(4)
        for index in range(100):
            counter.observe(("n", float(index % 13)))
        assert not counter.exact
        assert len(counter.counts) <= 4
        assert sum(counter.counts.values()) == 100

    def test_heavy_hitter_survives(self):
        counter = TopKCounter(3)
        values = ["hot"] * 50 + [str(index) for index in range(30)]
        for value in values:
            counter.observe(("s", value))
        assert ("s", "hot") in counter.counts
        assert counter.counts[("s", "hot")] >= 50

    def test_capacity_validated(self):
        with pytest.raises(SelectivityError):
            TopKCounter(0)


class TestStreamingHistogram:
    def test_exact_below_capacity(self):
        histogram = StreamingHistogram(capacity=8)
        for value in [1.0, 3.0, 3.0, 7.0]:
            histogram.observe(value)
        assert histogram.merges == 0
        assert histogram.cdf() == ([1.0, 3.0, 7.0], [0.25, 0.75, 1.0])

    def test_bounded_and_monotone_after_merges(self):
        histogram = StreamingHistogram(capacity=16)
        rng = make_rng(7, "histogram")
        for value in rng.uniform(0.0, 100.0, size=500):
            histogram.observe(float(value))
        assert len(histogram) <= 16
        assert histogram.merges > 0
        support, cumulative = histogram.cdf()
        assert support == sorted(support)
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(1.0)

    def test_approximates_uniform_cdf(self):
        histogram = StreamingHistogram(capacity=64)
        rng = make_rng(11, "histogram-uniform")
        sample = sorted(float(v) for v in rng.uniform(0.0, 1.0, size=2000))
        for value in sample:
            histogram.observe(value)
        support, cumulative = histogram.cdf()
        for point, mass in zip(support, cumulative):
            exact = sum(1 for v in sample if v <= point) / len(sample)
            assert abs(mass - exact) < 0.05

    def test_capacity_validated(self):
        with pytest.raises(SelectivityError):
            StreamingHistogram(capacity=1)


class TestOnlineVsOffline:
    """With unsaturated sketches, online == offline on the same sample."""

    @pytest.fixture()
    def sample(self, auction_events):
        return list(auction_events)

    @pytest.fixture()
    def offline(self, sample):
        return EventStatistics.from_events(sample)

    @pytest.fixture()
    def online(self, sample):
        statistics = OnlineEventStatistics(top_k=1024, histogram_bins=256)
        statistics.observe_batch(sample)
        return statistics.snapshot()

    def test_same_attributes(self, online, offline):
        assert online.attribute_names() == offline.attribute_names()

    def test_presence_matches(self, online, offline):
        for name in offline.attribute_names():
            assert online.attribute(name).presence == pytest.approx(
                offline.attribute(name).presence
            )

    def test_point_probabilities_match(self, online, offline, sample):
        for event in sample[:25]:
            for name, value in event.items():
                assert online.attribute(name).prob_eq(value) == pytest.approx(
                    offline.attribute(name).prob_eq(value)
                ), name

    def test_range_probabilities_match(self, online, offline, sample):
        for event in sample[:25]:
            for name, value in event.items():
                if isinstance(value, bool) or isinstance(value, str):
                    continue
                assert online.attribute(name).prob_less(
                    value, inclusive=True
                ) == pytest.approx(
                    offline.attribute(name).prob_less(value, inclusive=True)
                ), name

    def test_saturated_numeric_attribute_approximates(self):
        rng = make_rng(3, "online-saturated")
        sample = [Event({"x": float(v)}) for v in rng.uniform(0.0, 100.0, size=1000)]
        online = OnlineEventStatistics(top_k=16, histogram_bins=64)
        online.observe_batch(sample)
        offline = EventStatistics.from_events(sample)
        model = online.snapshot().attribute("x")
        exact = offline.attribute("x")
        for threshold in (10.0, 25.0, 50.0, 75.0, 90.0):
            assert abs(
                model.prob_less(threshold, inclusive=True)
                - exact.prob_less(threshold, inclusive=True)
            ) < 0.05


class TestOnlineEventStatistics:
    def test_empty_snapshot_falls_back_to_default(self):
        online = OnlineEventStatistics(default_probability=0.37)
        estimate = online.estimator().estimate(And(P("a") == 1, P("b") == 2))
        assert estimate.avg == pytest.approx(0.37 * 0.37)

    def test_sampling_is_seeded(self):
        events = [Event({"x": index}) for index in range(200)]
        first = OnlineEventStatistics(sample_rate=0.5, seed=5)
        second = OnlineEventStatistics(sample_rate=0.5, seed=5)
        assert first.observe_batch(events) == second.observe_batch(events)
        assert 0 < first.observed < first.seen == 200

    def test_recent_events_bounded(self):
        online = OnlineEventStatistics(recent_capacity=16)
        events = [Event({"x": index}) for index in range(100)]
        online.observe_batch(events)
        recent = online.recent_events()
        assert len(recent) == 16
        assert recent[-1] == events[-1]

    def test_concurrent_observers(self):
        online = OnlineEventStatistics()
        chunks = [
            [Event({"x": worker, "y": index}) for index in range(200)]
            for worker in range(4)
        ]
        threads = [
            threading.Thread(target=online.observe_batch, args=(chunk,))
            for chunk in chunks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert online.seen == online.observed == 800
        snapshot = online.snapshot()
        assert snapshot.attribute("x").presence == 1.0

    def test_validation(self):
        with pytest.raises(SelectivityError):
            OnlineEventStatistics(sample_rate=0.0)
        with pytest.raises(SelectivityError):
            OnlineEventStatistics(sample_rate=1.5)
        with pytest.raises(SelectivityError):
            OnlineEventStatistics(recent_capacity=0)


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSystemConditionsProbe:
    @pytest.fixture()
    def network(self):
        with BrokerNetwork(line_topology(2)) as network:
            network.subscribe("b1", "alice", And(P("x") >= 0, P("y") >= 0))
            yield network

    def test_first_snapshot_reports_zero_rates(self, network):
        probe = SystemConditionsProbe(network, clock=_FakeClock())
        conditions = probe.snapshot()
        assert conditions.bandwidth_utilization == 0.0
        assert conditions.filter_saturation == 0.0

    def test_rates_derive_from_window_deltas(self, network):
        clock = _FakeClock()
        probe = SystemConditionsProbe(network, clock=clock)
        probe.snapshot()
        for index in range(50):
            network.publish("b0", Event({"x": index, "y": 1}))
        clock.now = 2.0
        report = network.report()
        link_busy = report.link_busy_seconds(("b0", "b1"))
        conditions = probe.snapshot()
        assert conditions.bandwidth_utilization == pytest.approx(link_busy / 2.0)
        assert conditions.filter_saturation == pytest.approx(
            report.filter_seconds / 2.0
        )
        # A quiet window rates back down to zero.
        clock.now = 3.0
        quiet = probe.snapshot()
        assert quiet.bandwidth_utilization == 0.0
        assert quiet.filter_saturation == pytest.approx(0.0, abs=1e-9)

    def test_counter_reset_clamps_to_zero(self, network):
        clock = _FakeClock()
        probe = SystemConditionsProbe(network, clock=clock)
        for index in range(20):
            network.publish("b0", Event({"x": index, "y": 1}))
        clock.now = 1.0
        probe.snapshot()
        network.reset_statistics()
        clock.now = 2.0
        conditions = probe.snapshot()
        assert conditions.bandwidth_utilization == 0.0
        assert conditions.filter_saturation == 0.0

    def test_memory_pressure_against_budget(self, network):
        probe = SystemConditionsProbe(
            network, memory_budget_bytes=network.table_size_bytes
        )
        assert probe.snapshot().memory_pressure == pytest.approx(1.0)
        unbudgeted = SystemConditionsProbe(network)
        assert unbudgeted.snapshot().memory_pressure == 0.0

    def test_budget_validated(self, network):
        with pytest.raises(PruningError):
            SystemConditionsProbe(network, memory_budget_bytes=0)
