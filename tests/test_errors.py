"""API-stability tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SubscriptionError,
    errors.NormalizationError,
    errors.PruningError,
    errors.NoValidPruningError,
    errors.MatchingError,
    errors.SelectivityError,
    errors.RoutingError,
    errors.TopologyError,
    errors.WorkloadError,
    errors.ExperimentError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS, ids=lambda e: e.__name__)
def test_every_library_error_derives_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise error_type("boom")


def test_specializations():
    assert issubclass(errors.NormalizationError, errors.SubscriptionError)
    assert issubclass(errors.NoValidPruningError, errors.PruningError)
    assert issubclass(errors.TopologyError, errors.RoutingError)


def test_catch_all_pattern_works():
    """A caller can guard any library call with one except clause."""
    from repro import P, Subscription

    try:
        Subscription("not-an-int", P("a") == 1)
    except errors.ReproError as caught:
        assert isinstance(caught, errors.SubscriptionError)
    else:  # pragma: no cover
        raise AssertionError("expected a ReproError")
