"""Tests for combined optimizers: covering+pruning and pruning-based merging."""

import pytest

from repro.baselines.combined import CoveringWithPruning, prune_to_merge
from repro.errors import PruningError
from repro.subscriptions.builder import And, P
from repro.subscriptions.metrics import count_leaves
from repro.subscriptions.subscription import Subscription
from repro.workloads.auction import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    SubscriptionClassMix,
)


@pytest.fixture(scope="module")
def conjunctive_workload():
    config = AuctionWorkloadConfig(
        seed=31, class_mix=SubscriptionClassMix(1.0, 0.0, 0.0)
    )
    return AuctionWorkload(config)


class TestCoveringWithPruning:
    def test_covering_step_suppresses_subsumed(self, simple_estimator):
        subscriptions = [
            Subscription(1, P("cat") == "a"),
            Subscription(2, And(P("cat") == "a", P("price") <= 10.0)),
            Subscription(3, And(P("cat") == "b", P("price") <= 10.0)),
        ]
        optimizer = CoveringWithPruning(simple_estimator)
        table, report = optimizer.optimize(subscriptions, target_associations=100)
        assert report["covered"] == 1
        assert report["prunings"] == 0
        assert len(table) == 2

    def test_pruning_step_reaches_target(self, conjunctive_workload):
        subscriptions = conjunctive_workload.generate_subscriptions(60)
        estimator = conjunctive_workload.estimator()
        initial = sum(s.leaf_count for s in subscriptions)
        target = initial // 2
        optimizer = CoveringWithPruning(estimator)
        table, report = optimizer.optimize(subscriptions, target)
        achieved = sum(count_leaves(s.tree) for s in table)
        assert achieved <= max(target, len(table))
        assert report["prunings"] > 0

    def test_combined_table_covers_inputs(self, conjunctive_workload):
        subscriptions = conjunctive_workload.generate_subscriptions(40)
        estimator = conjunctive_workload.estimator()
        events = conjunctive_workload.generate_events(60).events
        initial = sum(s.leaf_count for s in subscriptions)
        optimizer = CoveringWithPruning(estimator)
        table, _report = optimizer.optimize(subscriptions, initial // 2)
        for event in events:
            if any(s.tree.evaluate(event) for s in subscriptions):
                assert any(t.tree.evaluate(event) for t in table)

    def test_target_validation(self, simple_estimator):
        with pytest.raises(PruningError):
            CoveringWithPruning(simple_estimator).optimize([], -1)


class TestPruneToMerge:
    def test_identical_generalizations_merge(self, simple_estimator):
        # Two subscriptions that share the cheap-to-keep predicate "cat == a":
        # pruning the price caps away makes them identical.
        subscriptions = [
            Subscription(1, And(P("cat") == "a", P("price") <= 95.0)),
            Subscription(2, And(P("cat") == "a", P("price") <= 99.0)),
        ]
        result = prune_to_merge(
            subscriptions, simple_estimator, max_step_degradation=0.3
        )
        assert len(result.table) == 1
        assert sorted(next(iter(result.groups.values()))) == [1, 2]

    def test_budget_zero_merges_nothing_new(self, simple_estimator):
        subscriptions = [
            Subscription(1, And(P("cat") == "a", P("flag") == True)),  # noqa: E712
            Subscription(2, And(P("cat") == "b", P("flag") == True)),  # noqa: E712
        ]
        result = prune_to_merge(
            subscriptions, simple_estimator, max_step_degradation=0.0
        )
        assert result.prunings == 0
        assert len(result.table) == 2

    def test_merged_table_covers_inputs(self, conjunctive_workload):
        subscriptions = conjunctive_workload.generate_subscriptions(50)
        estimator = conjunctive_workload.estimator()
        events = conjunctive_workload.generate_events(60).events
        result = prune_to_merge(subscriptions, estimator,
                                max_step_degradation=0.02)
        for event in events:
            if any(s.tree.evaluate(event) for s in subscriptions):
                assert any(t.tree.evaluate(event) for t in result.table)

    def test_groups_partition_subscriptions(self, conjunctive_workload):
        subscriptions = conjunctive_workload.generate_subscriptions(50)
        estimator = conjunctive_workload.estimator()
        result = prune_to_merge(subscriptions, estimator,
                                max_step_degradation=0.05)
        grouped = sorted(
            sub_id for ids in result.groups.values() for sub_id in ids
        )
        assert grouped == [s.id for s in subscriptions]

    def test_larger_budget_merges_at_least_as_much(self, conjunctive_workload):
        subscriptions = conjunctive_workload.generate_subscriptions(50)
        estimator = conjunctive_workload.estimator()
        small = prune_to_merge(subscriptions, estimator, 0.01)
        large = prune_to_merge(subscriptions, estimator, 0.2)
        assert len(large.table) <= len(small.table)

    def test_budget_validation(self, simple_estimator):
        with pytest.raises(PruningError):
            prune_to_merge([], simple_estimator, max_step_degradation=2.0)
