"""Tests for adaptive dimension switching."""

import pytest

from repro.core.adaptive import AdaptivePruner, SystemConditions
from repro.core.heuristics import Dimension
from repro.errors import PruningError
from repro.subscriptions.builder import And, Or, P
from repro.subscriptions.subscription import Subscription


@pytest.fixture()
def subscriptions():
    return [
        Subscription(0, And(P("cat") == "a", P("price") <= 10.0, P("flag") == True)),  # noqa: E712
        Subscription(1, And(P("cat") == "b", Or(P("price") <= 5.0, P("price") >= 95.0))),
    ]


def conditions(memory=0.0, bandwidth=0.0, cpu=0.0):
    return SystemConditions(
        memory_used_bytes=int(memory * 100),
        memory_budget_bytes=100,
        bandwidth_utilization=bandwidth,
        filter_saturation=cpu,
    )


class TestSelection:
    def test_defaults_to_network_when_unstressed(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        assert pruner.select_dimension(conditions()) is Dimension.NETWORK

    def test_memory_pressure_selects_memory(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        assert pruner.select_dimension(conditions(memory=0.95)) is Dimension.MEMORY

    def test_bandwidth_pressure_selects_network(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        assert pruner.select_dimension(conditions(bandwidth=0.9)) is Dimension.NETWORK

    def test_cpu_pressure_selects_throughput(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        assert (
            pruner.select_dimension(conditions(cpu=0.9)) is Dimension.THROUGHPUT
        )

    def test_most_stressed_dimension_wins(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        picked = pruner.select_dimension(conditions(memory=0.92, cpu=0.99))
        assert picked is Dimension.THROUGHPUT

    def test_memory_pressure_without_budget_is_zero(self):
        snapshot = SystemConditions(50, 0, 0.0, 0.0)
        assert snapshot.memory_pressure == 0.0


class TestOptimize:
    def test_optimize_switches_engine_dimension(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        pruner.optimize(conditions(memory=0.99), batch_size=1)
        assert pruner.current_dimension is Dimension.MEMORY
        assert pruner.dimension_history[-1] == (Dimension.MEMORY, 1)

    def test_history_counts_prunings_per_batch(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        records = pruner.optimize(conditions(), batch_size=2)
        assert pruner.dimension_history == [(Dimension.NETWORK, len(records))]

    def test_exhausted_engine_records_no_history(self, subscriptions, simple_estimator):
        """Regression: a batch that executes nothing must not append to the
        dimension history (the old code recorded the dimension before running
        the batch, so draining the engine kept logging phantom rounds)."""
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        while pruner.optimize(conditions(), batch_size=10):
            pass
        assert pruner.engine.exhausted
        depth = len(pruner.dimension_history)
        assert pruner.optimize(conditions(memory=0.99), batch_size=3) == []
        assert len(pruner.dimension_history) == depth
        assert all(count > 0 for _dimension, count in pruner.dimension_history)

    def test_stopped_before_first_step_records_no_history(
        self, subscriptions, simple_estimator
    ):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        records = pruner.optimize(conditions(), batch_size=5, stop_degradation=-1.0)
        assert records == []
        assert pruner.dimension_history == []

    def test_optimize_executes_batch(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        records = pruner.optimize(conditions(), batch_size=2)
        assert len(records) == 2

    def test_stop_degradation_bounds_batch(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        records = pruner.optimize(
            conditions(), batch_size=10, stop_degradation=0.0001
        )
        assert all(record.vector.sel <= 0.0001 for record in records)

    def test_batch_size_validated(self, subscriptions, simple_estimator):
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        with pytest.raises(PruningError):
            pruner.optimize(conditions(), batch_size=0)

    def test_threshold_validation(self, subscriptions, simple_estimator):
        with pytest.raises(PruningError):
            AdaptivePruner(subscriptions, simple_estimator, memory_threshold=0.0)

    def test_reference_points_survive_switches(self, subscriptions, simple_estimator):
        """After switching dimensions the engine still measures Δeff against
        the originally registered trees."""
        pruner = AdaptivePruner(subscriptions, simple_estimator)
        pruner.optimize(conditions(), batch_size=1)
        pruner.optimize(conditions(memory=0.99), batch_size=1)
        engine = pruner.engine
        for record in engine.records:
            state = engine.state(record.subscription_id)
            assert state.original is not None
