"""Tests for the event model and its columnar batch view."""

import pytest

from repro.events import Event, EventBatch, EventColumns, event_signature


class TestEventConstruction:
    def test_holds_attribute_value_pairs(self):
        event = Event({"price": 10.5, "title": "Dune"})
        assert event["price"] == 10.5
        assert event["title"] == "Dune"

    def test_supports_all_value_kinds(self):
        event = Event({"s": "x", "i": 3, "f": 2.5, "b": True})
        assert event["b"] is True
        assert len(event) == 4

    def test_rejects_empty_attribute_name(self):
        with pytest.raises(TypeError):
            Event({"": 1})

    def test_rejects_non_string_attribute_name(self):
        with pytest.raises(TypeError):
            Event({3: 1})

    def test_rejects_unsupported_value_type(self):
        with pytest.raises(TypeError):
            Event({"a": [1, 2]})

    def test_empty_event_is_allowed(self):
        assert len(Event({})) == 0


class TestEventMapping:
    def test_contains(self):
        event = Event({"a": 1})
        assert "a" in event
        assert "b" not in event

    def test_get_with_default(self):
        event = Event({"a": 1})
        assert event.get("a") == 1
        assert event.get("b") is None
        assert event.get("b", 7) == 7

    def test_iteration_yields_attribute_names(self):
        event = Event({"a": 1, "b": 2})
        assert sorted(event) == ["a", "b"]

    def test_missing_attribute_raises(self):
        with pytest.raises(KeyError):
            Event({})["nope"]

    def test_to_dict_returns_copy(self):
        event = Event({"a": 1})
        data = event.to_dict()
        data["a"] = 99
        assert event["a"] == 1


class TestEventEquality:
    def test_equal_events(self):
        assert Event({"a": 1, "b": "x"}) == Event({"b": "x", "a": 1})

    def test_unequal_events(self):
        assert Event({"a": 1}) != Event({"a": 2})

    def test_hash_consistent_with_equality(self):
        assert hash(Event({"a": 1, "b": 2})) == hash(Event({"b": 2, "a": 1}))

    def test_signature_is_sorted_pairs(self):
        assert event_signature(Event({"b": 2, "a": 1})) == (("a", 1), ("b", 2))


class TestEventSize:
    def test_size_counts_envelope(self):
        assert Event({}).size_bytes == 16

    def test_size_charges_strings_by_length(self):
        small = Event({"a": "x"})
        large = Event({"a": "x" * 50})
        assert large.size_bytes - small.size_bytes == 49

    def test_size_charges_numbers_fixed(self):
        assert Event({"a": 1}).size_bytes == Event({"a": 123456789}).size_bytes

    def test_size_is_cached_and_stable(self):
        event = Event({"a": 1, "b": "yz"})
        assert event.size_bytes == event.size_bytes


class TestEventBatch:
    def test_len_and_iteration(self):
        batch = EventBatch([Event({"a": 1}), Event({"a": 2})], label="x")
        assert len(batch) == 2
        assert [event["a"] for event in batch] == [1, 2]

    def test_indexing(self):
        batch = EventBatch([Event({"a": 1}), Event({"a": 2})])
        assert batch[1]["a"] == 2

    def test_sample_smaller_than_batch_strides_evenly(self):
        events = [Event({"i": index}) for index in range(10)]
        sample = EventBatch(events).sample(5)
        assert len(sample) == 5
        assert [event["i"] for event in sample] == [0, 2, 4, 6, 8]

    def test_sample_larger_than_batch_returns_all(self):
        events = [Event({"i": index}) for index in range(3)]
        assert len(EventBatch(events).sample(10)) == 3

    def test_sample_zero_returns_empty(self):
        assert len(EventBatch([Event({})]).sample(0)) == 0

    def test_total_size(self):
        batch = EventBatch([Event({}), Event({})])
        assert batch.total_size_bytes() == 32


class TestEventColumns:
    def _batch(self):
        return EventBatch(
            [
                Event({"price": 5, "tag": "abc", "hot": True}),
                Event({"tag": "abd"}),
                Event({"price": 7.5, "hot": False}),
                Event({}),
                Event({"price": 5, "tag": "abc"}),
            ]
        )

    def test_presence_rows_are_sparse_masks(self):
        columns = self._batch().columns()
        assert columns.row_count == 5
        assert columns.attribute_names == ["hot", "price", "tag"]
        assert columns.column("price").rows.tolist() == [0, 2, 4]
        assert columns.column("tag").rows.tolist() == [0, 1, 4]
        assert columns.column("missing") is None

    def test_values_split_by_kind(self):
        columns = self._batch().columns()
        price = columns.column("price")
        assert price.numeric_rows.tolist() == [0, 2, 4]
        assert price.numeric_values.tolist() == [5.0, 7.5, 5.0]
        assert len(price.string_rows) == len(price.bool_rows) == 0
        hot = columns.column("hot")
        assert hot.bool_rows.tolist() == [0, 2]
        assert hot.bool_values.tolist() == [True, False]

    def test_bool_is_not_numeric(self):
        columns = EventColumns.from_events([Event({"a": True, "b": 1})])
        assert len(columns.column("a").numeric_rows) == 0
        assert len(columns.column("a").bool_rows) == 1
        assert len(columns.column("b").numeric_rows) == 1

    def test_groups_by_distinct_value(self):
        price = self._batch().columns().column("price")
        numeric_groups, string_groups, _bool_groups = price.groups()
        assert sorted(
            (value, rows.tolist()) for value, rows in numeric_groups
        ) == [(5.0, [0, 4]), (7.5, [2])]
        assert string_groups == []

    def test_select_renumbers_rows(self):
        columns = self._batch().columns().select([1, 2, 4])
        assert columns.row_count == 3
        assert columns.column("price").rows.tolist() == [1, 2]
        assert columns.column("price").numeric_values.tolist() == [7.5, 5.0]
        assert columns.column("tag").rows.tolist() == [0, 2]
        # 'hot' only appears at original rows 0 and 2 -> kept row 2 -> new row 1
        assert columns.column("hot").rows.tolist() == [1]

    def test_select_drops_empty_columns(self):
        columns = self._batch().columns().select([3])
        assert columns.attribute_names == []

    def test_slice_rows_matches_select(self):
        columns = self._batch().columns()
        sliced = columns.slice_rows(1, 4)
        selected = columns.select([1, 2, 3])
        assert sliced.attribute_names == selected.attribute_names
        for name in sliced.attribute_names:
            assert (
                sliced.column(name).rows.tolist()
                == selected.column(name).rows.tolist()
            )

    def test_batch_caches_columns(self):
        batch = self._batch()
        assert batch.columns() is batch.columns()

    def test_subset_derives_columns_from_parent(self):
        batch = self._batch()
        batch.columns()
        subset = batch.subset([0, 2])
        assert subset.events == [batch.events[0], batch.events[2]]
        assert subset._columns is not None
        assert subset._columns.column("price").numeric_values.tolist() == [5.0, 7.5]

    def test_subset_without_columns_stays_lazy(self):
        subset = self._batch().subset([0, 1])
        assert subset._columns is None
        assert subset.columns().column("tag").rows.tolist() == [0, 1]
