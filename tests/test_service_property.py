"""Property test: micro-batching is observationally invisible.

Random interleavings of subscribe / unsubscribe / replace churn and
publishes run against a :class:`PubSubService` at several ingress
``max_batch`` sizes.  A mirror :class:`CountingMatcher` (whose per-event
``match`` is the oracle, itself equivalence-tested against the naive
matcher elsewhere) is kept in lockstep: every event's sink deliveries
must equal the oracle's match set *for the table that was live when the
event was submitted* — the service flushes pending events before any
churn, so buffering never changes what an event is matched against.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.matching.counting import CountingMatcher
from repro.routing.topology import line_topology
from repro.service import CollectingSink, PubSubService
from repro.subscriptions.subscription import Subscription

from tests.strategies import events, trees

BATCH_SIZES = [1, 7, 64]

#: One step of the interleaving: (op, payload).
steps = st.one_of(
    st.tuples(st.just("subscribe"), trees()),
    st.tuples(st.just("unsubscribe"), st.integers(min_value=0, max_value=999)),
    st.tuples(
        st.just("replace"),
        st.tuples(st.integers(min_value=0, max_value=999), trees()),
    ),
    st.tuples(st.just("publish"), events()),
    st.tuples(st.just("flush"), st.none()),
)


@pytest.mark.parametrize("max_batch", BATCH_SIZES)
@given(script=st.lists(steps, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_sink_deliveries_equal_match_oracle(max_batch, script):
    service = PubSubService(topology=line_topology(1), max_batch=max_batch)
    session = service.connect("b0", "subscriber", sink=CollectingSink())
    publisher = service.connect("b0", "publisher")

    oracle = CountingMatcher()
    handles = []
    published = []  # (sequence, event, expected ids at submit time)
    sequence = 0

    for op, payload in script:
        if op == "subscribe":
            handle = session.subscribe(payload)
            oracle.register(Subscription(handle.id, payload))
            handles.append(handle)
        elif op == "unsubscribe":
            if handles:
                handle = handles.pop(payload % len(handles))
                handle.unsubscribe()
                oracle.unregister(handle.id)
        elif op == "replace":
            index, tree = payload
            if handles:
                handle = handles[index % len(handles)]
                handle.replace(tree)
                oracle.replace(Subscription(handle.id, tree))
        elif op == "publish":
            # The oracle sees the table as it is *now*; flush-on-churn
            # guarantees the buffered event is matched against the same.
            published.append((sequence, payload, sorted(oracle.match(payload))))
            publisher.publish(payload)
            sequence += 1
        else:
            service.flush()

    service.flush()
    assert service.publish_count == len(published)

    delivered = {}
    for note in session.sink.notifications:
        delivered.setdefault(note.sequence, []).append(note.subscription_id)
    for expected_sequence, _event, expected_ids in published:
        got = sorted(delivered.get(expected_sequence, []))
        assert got == expected_ids
