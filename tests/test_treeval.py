"""Unit and property tests of the shared flat compiled-tree program.

The vectorized evaluator (:mod:`repro.matching.treeval`) must agree with
the scalar recursive oracle ``_evaluate_compiled`` on every tree and
every flags matrix — per slot (grouped rows), densely (all trees at
once), and across add/discard churn with range recycling and lazy
re-materialization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MatchingError
from repro.matching import treeval
from repro.matching.counting import _compile_tree, _evaluate_compiled
from repro.matching.treeval import OP_AND, OP_LEAF, OP_OR, TreePrograms
from repro.subscriptions.nodes import ConstNode, PredicateLeaf
from repro.subscriptions.subscription import Subscription

from tests import strategies


def compiled_program(tree):
    """Normalize ``tree`` and compile it over preorder entry ids 0..L-1.

    Returns ``(program, leaf_count)`` or ``None`` when normalization
    collapses the tree to a constant.
    """
    normalized = Subscription(0, tree).tree
    if isinstance(normalized, ConstNode):
        return None
    leaf_count = sum(
        1
        for _path, node in normalized.iter_nodes()
        if isinstance(node, PredicateLeaf)
    )
    program = _compile_tree(normalized, list(range(leaf_count)), [0])
    return program, leaf_count


def random_flags(seed, rows, width):
    rng = np.random.default_rng(seed)
    return rng.random((rows, max(width, 1))) < 0.5


@given(strategies.trees(max_leaves=24), st.integers(0, 2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_vectorized_evaluation_equals_scalar_oracle(tree, seed):
    compiled = compiled_program(tree)
    if compiled is None:
        return
    program, leaf_count = compiled
    programs = TreePrograms()
    assert programs.compile(7, program)
    flags = random_flags(seed, rows=5, width=leaf_count)
    rows = np.arange(5, dtype=np.int64)
    vectorized = programs.evaluate(7, rows, flags)
    expected = [_evaluate_compiled(program, flags[row]) for row in range(5)]
    assert vectorized.tolist() == expected
    root_positions, values = programs.evaluate_dense(flags)
    assert values[root_positions[7], rows].tolist() == expected


@given(
    st.lists(strategies.trees(max_leaves=12), min_size=1, max_size=6),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_dense_evaluation_spans_every_compiled_tree(tree_list, seed):
    """evaluate_dense answers for all slots exactly like per-slot calls."""
    programs = TreePrograms()
    compiled = {}
    offset = 0
    for slot, tree in enumerate(tree_list):
        result = compiled_program(tree)
        if result is None:
            continue
        program, leaf_count = result
        shifted = _shift_entries(program, offset)
        assert programs.compile(slot, shifted)
        compiled[slot] = shifted
        offset += leaf_count
    if not compiled:
        return
    flags = random_flags(seed, rows=4, width=offset)
    rows = np.arange(4, dtype=np.int64)
    root_positions, values = programs.evaluate_dense(flags)
    for slot, program in compiled.items():
        per_slot = programs.evaluate(slot, rows, flags)
        dense = values[root_positions[slot], rows]
        expected = [_evaluate_compiled(program, flags[row]) for row in range(4)]
        assert per_slot.tolist() == expected
        assert dense.tolist() == expected


def _shift_entries(program, offset):
    opcode, operand = program
    if opcode == OP_LEAF:
        return (opcode, operand + offset)
    return (opcode, tuple(_shift_entries(child, offset) for child in operand))


@given(
    st.lists(
        st.tuples(st.booleans(), strategies.trees(max_leaves=10)),
        min_size=2,
        max_size=14,
    ),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_recycling_churn_preserves_evaluation(ops, seed):
    """Interleaved compile/discard recycles ranges without corruption."""
    programs = TreePrograms()
    live = {}
    next_slot = 0
    width = 64
    for register, tree in ops:
        if register or not live:
            compiled = compiled_program(tree)
            if compiled is None:
                continue
            program, leaf_count = compiled
            if leaf_count > width:
                continue
            if programs.compile(next_slot, program):
                live[next_slot] = program
            next_slot += 1
        else:
            slot = sorted(live)[len(live) // 2]
            programs.discard(slot)
            del live[slot]
        flags = random_flags(seed, rows=3, width=width)
        rows = np.arange(3, dtype=np.int64)
        for slot, program in live.items():
            expected = [
                _evaluate_compiled(program, flags[row]) for row in range(3)
            ]
            assert programs.evaluate(slot, rows, flags).tolist() == expected


def test_exact_fit_recycling_reuses_ranges():
    program = (OP_OR, ((OP_AND, ((OP_LEAF, 0), (OP_LEAF, 1))), (OP_LEAF, 2)))
    programs = TreePrograms()
    assert programs.compile(0, program)
    top = programs.node_capacity
    for round_number in range(20):
        programs.discard(0)
        assert programs.compile(0, program)
    assert programs.node_capacity == top
    assert programs.free_node_count == 0


def test_rematerialization_repacks_and_preserves_results():
    programs = TreePrograms()
    trees = {}
    for slot in range(8):
        program = (
            OP_AND,
            ((OP_LEAF, slot), (OP_OR, ((OP_LEAF, 8 + slot), (OP_LEAF, 16 + slot)))),
        )
        assert programs.compile(slot, program)
        trees[slot] = program
    for slot in (1, 3, 5):
        programs.discard(slot)
        del trees[slot]
    assert programs.free_node_count > 0
    flags = random_flags(3, rows=4, width=24)
    rows = np.arange(4, dtype=np.int64)
    before = {
        slot: programs.evaluate(slot, rows, flags).tolist() for slot in trees
    }
    programs._rematerialize()
    assert programs.free_node_count == 0
    assert programs.node_capacity == programs.live_node_count
    for slot, program in trees.items():
        assert programs.evaluate(slot, rows, flags).tolist() == before[slot]
        assert before[slot] == [
            _evaluate_compiled(program, flags[row]) for row in range(4)
        ]


def test_rematerialization_triggers_automatically(monkeypatch):
    monkeypatch.setattr(treeval, "_COMPACT_MIN_FREE", 4)
    programs = TreePrograms()
    program = (OP_OR, ((OP_AND, ((OP_LEAF, 0), (OP_LEAF, 1))), (OP_LEAF, 2)))
    wide = (OP_AND, tuple((OP_LEAF, index) for index in range(6)))
    assert programs.compile(0, program)
    assert programs.compile(1, wide)
    # Discarding the wide tree leaves more free than live cells.
    programs.discard(1)
    assert programs.free_node_count == 0  # re-materialized away


def test_depth_and_size_bounds_refuse_compilation(monkeypatch):
    program = (OP_OR, ((OP_AND, ((OP_LEAF, 0), (OP_LEAF, 1))), (OP_LEAF, 2)))
    assert not TreePrograms(max_depth=1).compile(0, program)
    assert not TreePrograms(max_nodes=3).compile(0, program)
    accepted = TreePrograms(max_depth=2, max_nodes=5)
    assert accepted.compile(0, program)
    monkeypatch.setattr(treeval, "MAX_TREE_DEPTH", 1)
    refused = TreePrograms()
    assert not refused.compile(0, program)
    assert not refused.has(0)


def test_duplicate_slot_compilation_rejected():
    programs = TreePrograms()
    program = (OP_AND, ((OP_LEAF, 0), (OP_LEAF, 1)))
    assert programs.compile(0, program)
    with pytest.raises(MatchingError):
        programs.compile(0, program)


def test_discard_unknown_slot_is_noop():
    programs = TreePrograms()
    programs.discard(99)
    assert len(programs) == 0
