"""Heartbeats, reaping, liveness, and the goodbye-reason taxonomy.

Targeted regression tests for each self-healing mechanism, one at a
time (the combined storm lives in ``tests/test_chaos.py``):

* ``resumable_disconnect`` classifies every ``GOODBYE_*`` constant the
  way the reconnect supervisor expects;
* a client that stops acknowledging is detached with
  ``"ack-overdue"`` — and the session resumes by token with nothing
  lost;
* a silent client is reaped by the server's ``idle_timeout`` with
  ``"idle-timeout"`` — same resumable contract;
* heartbeat ping/pong keeps a quiet-but-healthy connection attached
  straight through that same idle window;
* a stalled read trips the *client's* liveness timeout, which aborts
  the socket and lets ``auto_reconnect`` heal the session.

Each scenario checks the delivered stream against an in-process oracle
session (same broker, same filters): identical fingerprints, gapless
``delivery_seq``.
"""

import asyncio

import pytest

from repro.events import Event
from repro.faults import FaultPlan, faulty_stream
from repro.routing.topology import line_topology
from repro.service import CollectingSink, PubSubService
from repro.subscriptions.builder import P
from repro.transport import (
    GOODBYE_ACK_OVERDUE,
    GOODBYE_AUTH,
    GOODBYE_BAD_VERSION,
    GOODBYE_CLIENT_CLOSE,
    GOODBYE_CLIENT_GOODBYE,
    GOODBYE_IDLE_TIMEOUT,
    GOODBYE_PROTOCOL_ERROR,
    GOODBYE_SERVER_SHUTDOWN,
    GOODBYE_SLOW_CONSUMER,
    GOODBYE_UNKNOWN_TOKEN,
    RESUMABLE_GOODBYE_REASONS,
    PubSubClient,
    PubSubServer,
    resumable_disconnect,
)

from tests.test_transport_e2e import (
    _Oracle,
    _pump_until,
    assert_gapless,
    fingerprint,
)


def test_resumable_disconnect_classification():
    # A reason-less drop (network fault) is exactly what resume is for.
    assert resumable_disconnect(None)
    assert RESUMABLE_GOODBYE_REASONS == frozenset(
        {GOODBYE_ACK_OVERDUE, GOODBYE_IDLE_TIMEOUT, GOODBYE_PROTOCOL_ERROR}
    )
    for reason in RESUMABLE_GOODBYE_REASONS:
        assert resumable_disconnect(reason)
    for reason in (
        GOODBYE_AUTH,
        GOODBYE_BAD_VERSION,
        GOODBYE_CLIENT_CLOSE,
        GOODBYE_CLIENT_GOODBYE,
        GOODBYE_SERVER_SHUTDOWN,
        GOODBYE_SLOW_CONSUMER,
        GOODBYE_UNKNOWN_TOKEN,
    ):
        assert not resumable_disconnect(reason)
    assert not resumable_disconnect("anything-unrecognized")


class TestGoodbyeTaxonomy:
    @pytest.mark.timeout(120)
    def test_ack_overdue_detach_is_resumable(self):
        async def main():
            service = PubSubService(topology=line_topology(1), max_batch=1)
            async with PubSubServer(service, "b0", max_unacked=8) as server:
                client = PubSubClient("127.0.0.1", server.port, "alice")
                await client.connect()
                await client.subscribe(P("price") >= 0.0)
                oracle = _Oracle(service, "b0", "oracle-alice")
                oracle.subscribe(P("price") >= 0.0)

                publisher = PubSubClient(
                    "127.0.0.1", server.port, "publisher"
                )
                await publisher.connect()

                # Ack blackout: deliveries keep flowing, acks stop.
                # (12 events: enough to blow the max_unacked=8 budget,
                # while the leftover backlog still fits it on resume.)
                client._try_send = lambda envelope: None
                for i in range(12):
                    await publisher.publish(Event({"price": float(i)}))
                await _pump_until(lambda: client.goodbye_reason is not None)
                assert client.goodbye_reason == GOODBYE_ACK_OVERDUE
                assert resumable_disconnect(client.goodbye_reason)
                await _pump_until(lambda: not client.connected)

                # Restore acking and resume under the same token.
                del client.__dict__["_try_send"]
                await client.reconnect()
                await client.wait_for_notifications(12)
                assert fingerprint(client.notifications) == fingerprint(
                    oracle.notifications
                )
                assert_gapless(client)
                await client.close()
                await publisher.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_idle_timeout_reaps_silent_client_resumably(self):
        async def main():
            service = PubSubService(topology=line_topology(1), max_batch=1)
            async with PubSubServer(
                service, "b0", idle_timeout=0.4
            ) as server:
                client = PubSubClient("127.0.0.1", server.port, "alice")
                await client.connect()
                await client.subscribe(P("price") >= 0.0)
                oracle = _Oracle(service, "b0", "oracle-alice")
                oracle.subscribe(P("price") >= 0.0)

                # No heartbeats configured: the client falls silent and
                # the server reaps it into a detached, resumable state.
                await _pump_until(lambda: not client.connected, timeout=5.0)
                assert client.goodbye_reason == GOODBYE_IDLE_TIMEOUT
                assert resumable_disconnect(client.goodbye_reason)

                publisher = PubSubClient(
                    "127.0.0.1", server.port, "publisher"
                )
                await publisher.connect()
                for i in range(5):
                    await publisher.publish(Event({"price": float(i)}))

                await client.reconnect()
                await client.wait_for_notifications(5)
                assert fingerprint(client.notifications) == fingerprint(
                    oracle.notifications
                )
                assert_gapless(client)
                await client.close()
                await publisher.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_heartbeat_keeps_idle_connection_alive(self):
        async def main():
            service = PubSubService(topology=line_topology(1), max_batch=1)
            async with PubSubServer(
                service, "b0", heartbeat_interval=0.1, idle_timeout=0.5
            ) as server:
                client = PubSubClient("127.0.0.1", server.port, "alice")
                await client.connect()
                await client.subscribe(P("price") >= 0.0)

                # Well past the idle window: server pings, the client
                # auto-pongs, and the connection must survive.
                await asyncio.sleep(1.3)
                assert client.connected
                assert client.goodbye_reason is None

                await client.publish(Event({"price": 1.0}))
                await client.wait_for_notifications(1)
                assert_gapless(client)
                await client.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_client_liveness_abort_and_auto_reconnect(self):
        async def main():
            service = PubSubService(topology=line_topology(1), max_batch=1)
            # One stall, longer than the liveness timeout, placed by a
            # plan armed only once the handshake is done.
            plan = FaultPlan(
                21,
                wire_kinds=("stall",),
                mean_gap_bytes=1.0,
                min_first_gap_bytes=0,
                stall_seconds=1.5,
                max_faults=1,
            )
            plan.disarm()
            async with PubSubServer(service, "b0") as server:
                client = PubSubClient(
                    "127.0.0.1",
                    server.port,
                    "alice",
                    heartbeat_interval=0.2,
                    liveness_timeout=0.5,
                    auto_reconnect=True,
                    stream_wrapper=faulty_stream(plan, "alice"),
                )
                await client.connect()
                await client.subscribe(P("price") >= 0.0)
                oracle = _Oracle(service, "b0", "oracle-alice")
                oracle.subscribe(P("price") >= 0.0)

                publisher = PubSubClient(
                    "127.0.0.1", server.port, "publisher"
                )
                await publisher.connect()

                plan.arm()  # the next inbound chunk stalls for 1.5s
                await publisher.publish(Event({"price": 1.0}))
                await _pump_until(
                    lambda: client.liveness_expiries >= 1, timeout=5.0
                )
                await _pump_until(lambda: client.reconnects >= 1, timeout=10.0)
                assert plan.counts().get("stall") == 1

                await publisher.publish(Event({"price": 2.0}))
                await client.wait_for_notifications(2)
                assert fingerprint(client.notifications) == fingerprint(
                    oracle.notifications
                )
                assert_gapless(client)
                assert len(client.recovery_latencies) == client.reconnects
                await client.close()
                await publisher.close()

        asyncio.run(main())
