"""Tests for tree metrics: pmin, memory size, counts."""

import pytest

from repro.errors import SubscriptionError
from repro.subscriptions.builder import And, Not, Or, P
from repro.subscriptions.metrics import (
    PMIN_UNSATISFIABLE,
    and_arities,
    attribute_histogram,
    count_leaves,
    count_nodes,
    memory_bytes,
    pmin,
    tree_depth,
)
from repro.subscriptions.nodes import FALSE, TRUE, NotNode, PredicateLeaf
from repro.subscriptions.normalize import normalize
from repro.subscriptions.predicates import Operator, Predicate


def leaf(attribute="a"):
    return PredicateLeaf(Predicate(attribute, Operator.EQ, 1))


class TestPmin:
    def test_single_predicate(self):
        assert pmin(leaf()) == 1

    def test_conjunction_sums(self):
        assert pmin(normalize(And(P("a") == 1, P("b") == 2, P("c") == 3))) == 3

    def test_disjunction_takes_minimum(self):
        tree = normalize(Or(And(P("a") == 1, P("b") == 2), P("c") == 3))
        assert pmin(tree) == 1

    def test_and_of_ors(self):
        tree = normalize(
            And(Or(P("a") == 1, P("b") == 2), Or(P("c") == 3, P("d") == 4))
        )
        assert pmin(tree) == 2

    def test_constants(self):
        assert pmin(TRUE) == 0
        assert pmin(FALSE) == PMIN_UNSATISFIABLE

    def test_not_node_rejected(self):
        with pytest.raises(SubscriptionError):
            pmin(NotNode(leaf()))

    def test_normalized_negation_counts_as_predicate(self):
        tree = normalize(And(P("a") == 1, Not(P("b") == 2)))
        assert pmin(tree) == 2


class TestMemoryBytes:
    def test_single_leaf(self):
        probe = leaf()
        assert memory_bytes(probe) == 8 + probe.predicate.size_bytes

    def test_additive_over_children(self):
        a, b = leaf("a"), leaf("bb")
        tree = normalize(And(a, P("bb") == 1))
        assert memory_bytes(tree) == 8 + memory_bytes(a) + memory_bytes(b)

    def test_larger_tree_larger_size(self):
        small = normalize(And(P("a") == 1, P("b") == 2))
        large = normalize(And(P("a") == 1, P("b") == 2, P("c") == 3))
        assert memory_bytes(large) > memory_bytes(small)


class TestCounts:
    def test_count_leaves(self):
        tree = normalize(And(P("a") == 1, Or(P("b") == 2, P("c") == 3)))
        assert count_leaves(tree) == 3

    def test_count_nodes(self):
        tree = normalize(And(P("a") == 1, Or(P("b") == 2, P("c") == 3)))
        assert count_nodes(tree) == 5

    def test_depth_of_leaf(self):
        assert tree_depth(leaf()) == 1

    def test_depth_of_nested(self):
        tree = normalize(And(P("a") == 1, Or(P("b") == 2, P("c") == 3)))
        assert tree_depth(tree) == 3

    def test_attribute_histogram(self):
        tree = normalize(And(P("a") == 1, Or(P("a") == 2, P("b") == 3)))
        assert attribute_histogram(tree) == {"a": 2, "b": 1}

    def test_and_arities(self):
        tree = normalize(
            And(P("a") == 1, P("b") == 2, Or(P("c") == 3, And(P("d") == 4, P("e") == 5)))
        )
        assert sorted(and_arities(tree)) == [2, 3]
