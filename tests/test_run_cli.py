"""Tests for the experiment CLI."""

import os

import pytest

from repro.experiments.run import build_parser, main, run_figures, select_figures


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.figure == "all"
        assert args.scale == "default"

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--figure", "9z"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic"])


class TestSelection:
    def test_all(self):
        assert select_figures("all") == ["1a", "1b", "1c", "1d", "1e", "1f"]

    def test_centralized(self):
        assert select_figures("centralized") == ["1a", "1b", "1c"]

    def test_distributed(self):
        assert select_figures("distributed") == ["1d", "1e", "1f"]

    def test_single(self):
        assert select_figures("1e") == ["1e"]


class TestExecution:
    def test_run_figures_centralized_only(self):
        figures = run_figures(
            ["1c"], scale="tiny", seed=5, points=3, subscriptions=60, events=30
        )
        assert set(figures) == {"1c"}
        assert len(figures["1c"].xs) == 3

    def test_main_prints_and_writes(self, tmp_path, capsys):
        exit_code = main(
            [
                "--figure", "1b",
                "--scale", "tiny",
                "--points", "3",
                "--subscriptions", "60",
                "--events", "30",
                "--out", str(tmp_path),
                "--no-plot",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Fig. 1b" in captured.out
        assert os.path.exists(os.path.join(str(tmp_path), "fig1b.csv"))
