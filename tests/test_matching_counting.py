"""Tests for the counting-based filtering engine."""

import pytest

from repro.errors import MatchingError
from repro.events import Event
from repro.matching.counting import CountingMatcher
from repro.subscriptions.builder import And, Not, Or, P
from repro.subscriptions.nodes import ConstNode
from repro.subscriptions.subscription import Subscription


def sub(sub_id, tree, owner=None):
    return Subscription(sub_id, tree, owner=owner)


@pytest.fixture()
def matcher():
    return CountingMatcher()


class TestRegistration:
    def test_register_and_match(self, matcher):
        matcher.register(sub(1, P("a") == 1))
        assert matcher.match(Event({"a": 1})) == [1]

    def test_duplicate_id_rejected(self, matcher):
        matcher.register(sub(1, P("a") == 1))
        with pytest.raises(MatchingError):
            matcher.register(sub(1, P("a") == 2))

    def test_unregister_removes(self, matcher):
        matcher.register(sub(1, P("a") == 1))
        matcher.unregister(1)
        assert matcher.match(Event({"a": 1})) == []

    def test_unregister_unknown_rejected(self, matcher):
        with pytest.raises(MatchingError):
            matcher.unregister(9)

    def test_replace_swaps_tree(self, matcher):
        matcher.register(sub(1, P("a") == 1))
        matcher.replace(sub(1, P("a") == 2))
        assert matcher.match(Event({"a": 1})) == []
        assert matcher.match(Event({"a": 2})) == [1]

    def test_replace_unknown_rejected(self, matcher):
        with pytest.raises(MatchingError):
            matcher.replace(sub(1, P("a") == 1))

    def test_register_all(self, matcher):
        matcher.register_all([sub(1, P("a") == 1), sub(2, P("a") == 2)])
        assert matcher.subscription_count == 2


class TestPminGating:
    def test_conjunction_requires_all(self, matcher):
        matcher.register(sub(1, And(P("a") == 1, P("b") == 2, P("c") == 3)))
        assert matcher.match(Event({"a": 1, "b": 2})) == []
        assert matcher.match(Event({"a": 1, "b": 2, "c": 3})) == [1]

    def test_disjunction_requires_one(self, matcher):
        matcher.register(sub(1, Or(P("a") == 1, P("b") == 2)))
        assert matcher.match(Event({"b": 2})) == [1]

    def test_general_tree_evaluated_exactly(self, matcher):
        tree = And(P("a") == 1, Or(P("b") == 2, P("c") == 3))
        matcher.register(sub(1, tree))
        # two predicates fulfilled but the wrong two: a missing
        assert matcher.match(Event({"b": 2, "c": 3})) == []
        assert matcher.match(Event({"a": 1, "c": 3})) == [1]

    def test_negation_inside_tree(self, matcher):
        matcher.register(sub(1, And(P("a") == 1, Not(P("b") == 2))))
        assert matcher.match(Event({"a": 1, "b": 3})) == [1]
        assert matcher.match(Event({"a": 1, "b": 2})) == []
        # NOT has presence semantics: b absent -> complement unfulfilled
        assert matcher.match(Event({"a": 1})) == []

    def test_always_true_subscription_matches_everything(self, matcher):
        matcher.register(Subscription(1, ConstNode(True)))
        assert matcher.match(Event({})) == [1]
        assert matcher.match(Event({"x": 1})) == [1]

    def test_always_false_subscription_never_matches(self, matcher):
        matcher.register(Subscription(1, ConstNode(False)))
        assert matcher.match(Event({})) == []


class TestMultipleSubscriptions:
    def test_results_sorted_by_id(self, matcher):
        matcher.register(sub(5, P("a") == 1))
        matcher.register(sub(2, P("a") == 1))
        matcher.register(sub(9, P("a") == 2))
        assert matcher.match(Event({"a": 1})) == [2, 5]

    def test_match_subscriptions_resolves_objects(self, matcher):
        matcher.register(sub(1, P("a") == 1, owner="alice"))
        matched = matcher.match_subscriptions(Event({"a": 1}))
        assert matched[0].owner == "alice"

    def test_association_count_sums_leaves(self, matcher):
        matcher.register(sub(1, And(P("a") == 1, P("b") == 2)))
        matcher.register(sub(2, P("a") == 1))
        assert matcher.association_count == 3

    def test_entry_count_matches_leaves(self, matcher):
        matcher.register(sub(1, And(P("a") == 1, P("b") == 2)))
        matcher.register(sub(2, Or(P("a") == 1, P("c") == 3)))
        assert matcher.entry_count == 4


class TestStatistics:
    def test_counters_accumulate(self, matcher):
        matcher.register(sub(1, And(P("a") == 1, P("b") == 2)))
        matcher.match(Event({"a": 1, "b": 2}))
        matcher.match(Event({"a": 1}))
        stats = matcher.statistics
        assert stats.events == 2
        assert stats.matches == 1
        assert stats.elapsed_seconds > 0

    def test_flat_shapes_do_not_need_tree_evaluation(self, matcher):
        matcher.register(sub(1, And(P("a") == 1, P("b") == 2)))
        matcher.register(sub(2, Or(P("a") == 1, P("b") == 2)))
        matcher.match(Event({"a": 1, "b": 2}))
        assert matcher.statistics.tree_evaluations == 0

    def test_general_tree_counts_evaluation(self, matcher):
        matcher.register(sub(1, And(P("a") == 1, Or(P("b") == 2, P("c") == 3))))
        matcher.match(Event({"a": 1, "b": 2}))
        assert matcher.statistics.tree_evaluations == 1

    def test_reset(self, matcher):
        matcher.register(sub(1, P("a") == 1))
        matcher.match(Event({"a": 1}))
        matcher.statistics.reset()
        assert matcher.statistics.events == 0

    def test_merge(self):
        from repro.matching.stats import MatchStatistics

        a, b = MatchStatistics(), MatchStatistics()
        a.events, b.events = 2, 3
        a.matches, b.matches = 1, 4
        a.merge(b)
        assert a.events == 5
        assert a.matches == 5

    def test_mean_time_and_match_rate(self):
        from repro.matching.stats import MatchStatistics

        stats = MatchStatistics()
        assert stats.mean_time_per_event == 0.0
        assert stats.match_rate == 0.0
        stats.events = 4
        stats.matches = 6
        stats.elapsed_seconds = 2.0
        assert stats.mean_time_per_event == 0.5
        assert stats.match_rate == 1.5


class TestDiagnostics:
    def test_fulfilled_counts(self, matcher):
        matcher.register(sub(1, And(P("a") == 1, P("b") == 2, P("c") == 3)))
        matcher.register(sub(2, P("a") == 1))
        counts = matcher.fulfilled_counts(Event({"a": 1, "b": 2}))
        assert counts == {1: 2, 2: 1}

    def test_not_equal_counting_via_subtraction(self, matcher):
        matcher.register(sub(1, And(P("a") != 5, P("b") == 1)))
        counts = matcher.fulfilled_counts(Event({"a": 5, "b": 1}))
        assert counts[1] == 1  # only b == 1 fulfilled
        counts = matcher.fulfilled_counts(Event({"a": 4, "b": 1}))
        assert counts[1] == 2

    def test_rebuild_is_lazy(self, matcher):
        matcher.register(sub(1, P("a") == 1))
        matcher.match(Event({"a": 1}))
        matcher.register(sub(2, P("a") == 1))
        # the new registration is visible on the next match
        assert matcher.match(Event({"a": 1})) == [1, 2]


class TestAutoCompaction:
    """The fragmentation heuristic: unregister churn triggers rebuild()."""

    @staticmethod
    def _fill(matcher, count):
        for index in range(count):
            matcher.register(sub(index, And(P("a") == index, P("b") <= index)))

    def test_compaction_triggers_at_threshold(self):
        # Single-leaf subscriptions keep the slot and entry free lists in
        # lockstep: with 129 registered, the 64th unregistration is the
        # first to clear both the absolute floor (64 free) and the
        # fraction gate (64 > 65 live * 0.5), and must compact.
        matcher = CountingMatcher()
        for index in range(129):
            matcher.register(sub(index, P("a") == index))
        for index in range(63):
            matcher.unregister(index)
        assert len(matcher._free_slots) == 63  # not yet
        matcher.unregister(63)
        assert len(matcher._slots) == 65
        assert not matcher._free_slots
        assert matcher._indexes.entry_capacity == matcher.entry_count == 65
        assert matcher.match(Event({"a": 100})) == [100]

    def test_heavy_unregister_churn_keeps_table_dense(self):
        matcher = CountingMatcher()
        self._fill(matcher, 200)
        for index in range(150):
            matcher.unregister(index)
        live = len(matcher._subscriptions)
        assert live == 50
        # Repeated compactions keep the id spaces near the live population
        # (at most one un-triggered churn tail of fragmentation).
        assert len(matcher._slots) - len(matcher._free_slots) == live
        assert len(matcher._slots) < 100
        assert matcher._indexes.entry_capacity < 200
        assert matcher.match(Event({"a": 199, "b": 0})) == [199]

    def test_small_tables_never_thrash(self):
        matcher = CountingMatcher()
        self._fill(matcher, 20)
        for index in range(19):
            matcher.unregister(index)
        # Free lists stay below the absolute compaction floor.
        assert len(matcher._slots) == 20
        assert len(matcher._free_slots) == 19

    def test_disabled_by_none(self):
        matcher = CountingMatcher(compact_free_fraction=None)
        self._fill(matcher, 200)
        for index in range(199):
            matcher.unregister(index)
        assert len(matcher._slots) == 200
        assert len(matcher._free_slots) == 199
        assert matcher.match(Event({"a": 199, "b": 0})) == [199]

    def test_replace_churn_never_compacts(self):
        # Replace reuses its freed ids immediately; auto-compaction on the
        # replace path would make it O(table) again.
        matcher = CountingMatcher()
        self._fill(matcher, 200)
        slots_before = len(matcher._slots)
        for index in range(200):
            matcher.replace(sub(index, And(P("a") == -index, P("b") <= index)))
        assert len(matcher._slots) == slots_before
        assert matcher._indexes.entry_capacity == 400
