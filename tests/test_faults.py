"""Unit tests for ``repro.faults``: plans, lanes, wrappers, injectors.

The chaos soak (``tests/test_chaos.py``) proves the system heals under
randomized fault storms; this module pins down the *injection
machinery* itself — seeded determinism, budget/disarm vetoes, byte
conservation of the stream wrappers, and the worker-injector hooks —
with small deterministic fixtures.
"""

import asyncio

import pytest

from repro.errors import MatchingError
from repro.faults import (
    READ_FAULT_KINDS,
    WIRE_FAULT_KINDS,
    WRITE_FAULT_KINDS,
    BackoffSchedule,
    FaultPlan,
    FaultyReader,
    FaultyWriter,
    WorkerFaultInjector,
    faulty_stream,
    worker_injector,
)


# -- plan ------------------------------------------------------------------


def test_plan_rejects_unknown_kinds_and_bad_gaps():
    with pytest.raises(ValueError):
        FaultPlan(1, wire_kinds=("reset", "gamma-ray"))
    with pytest.raises(ValueError):
        FaultPlan(1, worker_kinds=("worker_kill", "oom"))
    with pytest.raises(ValueError):
        FaultPlan(1, mean_gap_bytes=0.0)
    with pytest.raises(ValueError):
        FaultPlan(1, mean_gap_seconds=-1.0)


def test_plan_attempt_counter_is_per_label():
    plan = FaultPlan(1)
    assert plan.next_attempt("alice") == 0
    assert plan.next_attempt("alice") == 1
    assert plan.next_attempt("bob") == 0
    assert plan.next_attempt("alice") == 2


def test_lane_direction_filters_kinds():
    plan = FaultPlan(1, wire_kinds=WIRE_FAULT_KINDS)
    read_lane = plan.wire_lane("c", 0, "read")
    write_lane = plan.wire_lane("c", 0, "write")
    assert set(read_lane._kinds) <= READ_FAULT_KINDS
    assert set(write_lane._kinds) <= WRITE_FAULT_KINDS


def _drain_lane(plan, label, chunks, direction="read"):
    lane = plan.wire_lane(label, 0, direction)
    fired = []
    for size in chunks:
        fault = lane.poll(size, 0.0)
        if fault is not None:
            fired.append(fault)
    return fired


def test_lane_schedule_is_deterministic_per_seed():
    chunks = [64] * 200
    first = _drain_lane(
        FaultPlan(42, mean_gap_bytes=128.0, min_first_gap_bytes=0),
        "alice",
        chunks,
    )
    second = _drain_lane(
        FaultPlan(42, mean_gap_bytes=128.0, min_first_gap_bytes=0),
        "alice",
        chunks,
    )
    other_label = _drain_lane(
        FaultPlan(42, mean_gap_bytes=128.0, min_first_gap_bytes=0),
        "bob",
        chunks,
    )
    assert first and first == second
    assert first != other_label
    for _, offset in first:
        assert 0 <= offset < 64


def test_lane_respects_budget_and_disarm():
    plan = FaultPlan(7, mean_gap_bytes=16.0, min_first_gap_bytes=0, max_faults=3)
    lane = plan.wire_lane("c", 0, "read")
    for _ in range(500):
        lane.poll(64, 0.0)
    assert plan.injected == 3
    assert sum(plan.counts().values()) == 3
    plan2 = FaultPlan(7, mean_gap_bytes=16.0, min_first_gap_bytes=0)
    plan2.disarm()
    lane2 = plan2.wire_lane("c", 0, "read")
    assert all(lane2.poll(64, 0.0) is None for _ in range(100))
    assert plan2.injected == 0
    plan2.arm()
    assert any(lane2.poll(64, 0.0) is not None for _ in range(100))


def test_lane_time_mode_fires_on_the_clock():
    plan = FaultPlan(3, wire_kinds=("reset",), mean_gap_seconds=0.5)
    lane = plan.wire_lane("c", 0, "read")
    assert lane.poll(10, 0.0) is None  # first poll only arms the timer
    assert lane.poll(10, 1.0e9) == ("reset", 0)
    assert plan.kinds_injected() == frozenset({"reset"})


def test_min_first_gap_lets_the_handshake_through():
    plan = FaultPlan(5, mean_gap_bytes=1.0, min_first_gap_bytes=10_000)
    lane = plan.wire_lane("c", 0, "read")
    assert lane.poll(4096, 0.0) is None  # below the first-gap floor
    assert any(lane.poll(4096, 0.0) is not None for _ in range(10))


# -- stream wrappers -------------------------------------------------------


class _ChunkReader:
    def __init__(self, chunks):
        self._chunks = list(chunks)

    async def read(self, n=-1):
        return self._chunks.pop(0) if self._chunks else b""


class _FakeTransport:
    def __init__(self):
        self.aborted = False

    def abort(self):
        self.aborted = True


class _CaptureWriter:
    def __init__(self):
        self.chunks = []
        self.closed = False
        self._transport = _FakeTransport()

    @property
    def transport(self):
        return self._transport

    def write(self, data):
        self.chunks.append(bytes(data))

    async def drain(self):
        pass

    def close(self):
        self.closed = True


def _single_kind_plan(kind, **overrides):
    options = dict(
        wire_kinds=(kind,),
        mean_gap_bytes=8.0,
        min_first_gap_bytes=0,
        stall_seconds=0.001,
        holdback_seconds=0.01,
    )
    options.update(overrides)
    return FaultPlan(11, **options)


def test_faulty_reader_split_conserves_bytes():
    async def main():
        plan = _single_kind_plan("split")
        reader = FaultyReader(
            _ChunkReader([b"a" * 64, b"b" * 64]), plan.wire_lane("c", 0, "read")
        )
        out = []
        while True:
            data = await reader.read(65536)
            if not data:
                break
            out.append(data)
        assert b"".join(out) == b"a" * 64 + b"b" * 64
        assert len(out) > 2  # at least one chunk actually split
        assert plan.counts()["split"] >= 1

    asyncio.run(main())


def test_faulty_reader_reset_raises():
    async def main():
        plan = _single_kind_plan("reset")
        reader = FaultyReader(
            _ChunkReader([b"x" * 64]), plan.wire_lane("c", 0, "read")
        )
        with pytest.raises(ConnectionResetError):
            for _ in range(10):
                await reader.read(65536)

    asyncio.run(main())


def test_faulty_writer_short_write_conserves_bytes():
    async def main():
        plan = _single_kind_plan("short_write")
        inner = _CaptureWriter()
        writer = FaultyWriter(
            inner, plan.wire_lane("c", 0, "write"), asyncio.get_running_loop()
        )
        payload = bytes(range(256)) * 4
        writer.write(payload)
        await asyncio.sleep(0.05)  # holdback flush timer
        assert b"".join(inner.chunks) == payload
        assert plan.counts()["short_write"] >= 1

    asyncio.run(main())


def test_faulty_writer_merge_coalesces_but_conserves_bytes():
    async def main():
        plan = _single_kind_plan("merge")
        inner = _CaptureWriter()
        writer = FaultyWriter(
            inner, plan.wire_lane("c", 0, "write"), asyncio.get_running_loop()
        )
        for index in range(8):
            writer.write(bytes([index]) * 16)
        await asyncio.sleep(0.05)
        assert b"".join(inner.chunks) == b"".join(
            bytes([index]) * 16 for index in range(8)
        )
        assert plan.counts()["merge"] >= 1

    asyncio.run(main())


def test_faulty_writer_reset_aborts_and_swallows():
    async def main():
        plan = _single_kind_plan("reset", mean_gap_bytes=1.0)
        inner = _CaptureWriter()
        writer = FaultyWriter(
            inner, plan.wire_lane("c", 0, "write"), asyncio.get_running_loop()
        )
        for _ in range(10):
            writer.write(b"y" * 64)
        assert inner.transport.aborted
        # Everything after the reset is swallowed, like a dead socket.
        written = sum(len(chunk) for chunk in inner.chunks)
        assert written < 10 * 64

    asyncio.run(main())


def test_faulty_stream_claims_one_attempt_per_connection():
    async def main():
        plan = FaultPlan(9)
        wrapper = faulty_stream(plan, "alice")
        wrapper(_ChunkReader([]), _CaptureWriter())
        wrapper(_ChunkReader([]), _CaptureWriter())
        assert plan.next_attempt("alice") == 2

    asyncio.run(main())


def test_disarmed_wrapper_is_a_pass_through():
    async def main():
        plan = _single_kind_plan("split")
        plan.disarm()
        reader = FaultyReader(
            _ChunkReader([b"q" * 64]), plan.wire_lane("c", 0, "read")
        )
        assert await reader.read(65536) == b"q" * 64
        assert plan.injected == 0

    asyncio.run(main())


# -- worker injector -------------------------------------------------------


class _FakePool:
    def __init__(self):
        self.killed = []

    def kill_worker(self, shard):
        self.killed.append(shard)


def test_worker_injector_none_without_worker_faults():
    assert worker_injector(FaultPlan(1)) is None
    assert worker_injector(FaultPlan(1, worker_kinds=("worker_kill",))) is None
    assert (
        worker_injector(
            FaultPlan(1, worker_kinds=("worker_kill",), worker_mean_gap_calls=2.0)
        )
        is not None
    )


def test_worker_injector_pack_fail_raises_on_schedule():
    plan = FaultPlan(2, worker_kinds=("pack_fail",), worker_mean_gap_calls=1.0)
    injector = WorkerFaultInjector(plan)
    raised = 0
    for _ in range(10):
        try:
            injector.before_pack()
        except MatchingError:
            raised += 1
    assert raised >= 1
    assert plan.counts()["pack_fail"] == raised
    plan.disarm()
    for _ in range(10):
        injector.before_pack()  # vetoed: must not raise


def test_worker_injector_kills_only_match_commands():
    plan = FaultPlan(4, worker_kinds=("worker_kill",), worker_mean_gap_calls=1.0)
    injector = WorkerFaultInjector(plan)
    pool = _FakePool()
    for _ in range(10):
        injector.before_send(pool, 1, "sync")
        injector.before_send(pool, 1, "introspect")
    assert pool.killed == []
    for _ in range(10):
        injector.before_send(pool, 3, "match")
    assert pool.killed and set(pool.killed) == {3}
    assert plan.counts()["worker_kill"] == len(pool.killed)


# -- backoff basics (properties live in test_backoff_property.py) ----------


def test_backoff_validation_and_determinism():
    with pytest.raises(ValueError):
        BackoffSchedule(base=-0.1)
    with pytest.raises(ValueError):
        BackoffSchedule(multiplier=0.5)
    with pytest.raises(ValueError):
        BackoffSchedule(cap=-1.0)
    schedule = BackoffSchedule(base=0.1, cap=2.0, seed=3, label="alice")
    assert schedule(5) == schedule.delay(5)
    assert schedule.delay(5) == BackoffSchedule(
        base=0.1, cap=2.0, seed=3, label="alice"
    ).delay(5)
    assert schedule.envelope(0) == 0.1
    assert schedule.envelope(10_000) == 2.0
