"""The distributed experiment generalized beyond the paper's line topology."""

import pytest

from repro.core.heuristics import Dimension
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.distributed import DistributedExperiment, _build_topology


class TestTopologyBuilder:
    def test_line(self):
        topology = _build_topology("line", 5)
        assert len(topology) == 5
        assert topology.diameter() == 4

    def test_star(self):
        topology = _build_topology("star", 5)
        assert len(topology) == 5
        assert topology.diameter() == 2

    def test_tree(self):
        topology = _build_topology("tree", 7)
        assert len(topology) == 7
        assert topology.diameter() == 4

    def test_tree_falls_back_to_line_when_too_small(self):
        topology = _build_topology("tree", 2)
        assert len(topology) == 2

    def test_single_broker_degenerates(self):
        assert len(_build_topology("star", 1)) == 1

    def test_config_rejects_unknown_topology(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(topology="ring")


@pytest.mark.parametrize("topology", ["star", "tree"])
def test_distributed_sweep_on_alternative_topologies(topology):
    """The paper's invariants hold on non-line broker graphs too:
    deliveries constant, network increase monotone from zero."""
    broker_count = 5 if topology == "star" else 7
    context = ExperimentContext(
        ExperimentConfig(
            seed=21,
            subscription_count=70,
            event_count=40,
            grid_points=3,
            broker_count=broker_count,
            topology=topology,
        )
    )
    points = DistributedExperiment(context).run(Dimension.NETWORK)
    deliveries = {p.deliveries for p in points}
    assert len(deliveries) == 1
    increases = [p.network_increase for p in points]
    assert increases[0] == 0.0
    assert increases == sorted(increases)
