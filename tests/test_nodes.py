"""Tests for subscription tree nodes."""

import pytest

from repro.errors import SubscriptionError
from repro.events import Event
from repro.subscriptions.builder import And, Not, Or, P
from repro.subscriptions.nodes import (
    FALSE,
    TRUE,
    AndNode,
    ConstNode,
    NotNode,
    OrNode,
    PredicateLeaf,
)
from repro.subscriptions.predicates import Operator, Predicate


def leaf(attribute="a", operator=Operator.EQ, value=1):
    return PredicateLeaf(Predicate(attribute, operator, value))


class TestEvaluation:
    def test_and_requires_all_children(self):
        tree = AndNode([leaf("a", value=1), leaf("b", value=2)])
        assert tree.evaluate(Event({"a": 1, "b": 2}))
        assert not tree.evaluate(Event({"a": 1, "b": 3}))

    def test_or_requires_any_child(self):
        tree = OrNode([leaf("a", value=1), leaf("b", value=2)])
        assert tree.evaluate(Event({"a": 0, "b": 2}))
        assert not tree.evaluate(Event({"a": 0, "b": 0}))

    def test_constants(self):
        assert TRUE.evaluate(Event({}))
        assert not FALSE.evaluate(Event({}))

    def test_not_uses_predicate_level_semantics(self):
        tree = NotNode(leaf("a", Operator.EQ, 1))
        # attribute present and != 1 -> fulfilled
        assert tree.evaluate(Event({"a": 2}))
        # attribute absent -> NOT is also unfulfilled (presence required)
        assert not tree.evaluate(Event({}))

    def test_not_of_and_is_de_morgan(self):
        tree = NotNode(AndNode([leaf("a", value=1), leaf("b", value=2)]))
        assert tree.evaluate(Event({"a": 1, "b": 3}))
        assert not tree.evaluate(Event({"a": 1, "b": 2}))

    def test_double_negation(self):
        tree = NotNode(NotNode(leaf("a", value=1)))
        assert tree.evaluate(Event({"a": 1}))
        assert not tree.evaluate(Event({"a": 2}))


class TestTraversal:
    def test_iter_nodes_preorder_with_paths(self):
        tree = AndNode([leaf("a"), OrNode([leaf("b"), leaf("c")])])
        paths = [path for path, _node in tree.iter_nodes()]
        assert paths == [(), (0,), (1,), (1, 0), (1, 1)]

    def test_node_at_root(self):
        tree = AndNode([leaf("a"), leaf("b")])
        assert tree.node_at(()) is tree

    def test_node_at_nested(self):
        inner = OrNode([leaf("b"), leaf("c")])
        tree = AndNode([leaf("a"), inner])
        assert tree.node_at((1,)) is inner
        assert tree.node_at((1, 0)).predicate.attribute == "b"

    def test_node_at_invalid_path_raises(self):
        tree = AndNode([leaf("a"), leaf("b")])
        with pytest.raises(SubscriptionError):
            tree.node_at((5,))

    def test_replace_at_shares_untouched_subtrees(self):
        left = leaf("a")
        right = OrNode([leaf("b"), leaf("c")])
        tree = AndNode([left, right])
        new_tree = tree.replace_at((0,), leaf("z"))
        assert new_tree.children[1] is right
        assert new_tree.children[0].predicate.attribute == "z"
        assert tree.children[0] is left  # original untouched

    def test_replace_at_root_returns_replacement(self):
        tree = AndNode([leaf("a"), leaf("b")])
        replacement = leaf("z")
        assert tree.replace_at((), replacement) is replacement

    def test_predicates_in_order(self):
        tree = AndNode([leaf("a"), OrNode([leaf("b"), leaf("c")])])
        assert [p.attribute for p in tree.predicates()] == ["a", "b", "c"]


class TestStructure:
    def test_structural_equality(self):
        assert AndNode([leaf("a"), leaf("b")]) == AndNode([leaf("a"), leaf("b")])

    def test_and_or_not_equal(self):
        assert AndNode([leaf("a"), leaf("b")]) != OrNode([leaf("a"), leaf("b")])

    def test_hash_consistency(self):
        assert hash(AndNode([leaf("a")])) == hash(AndNode([leaf("a")]))

    def test_with_children_preserves_type(self):
        tree = AndNode([leaf("a"), leaf("b")])
        new = tree.with_children([leaf("c"), leaf("d")])
        assert isinstance(new, AndNode)
        assert len(new.children) == 2

    def test_leaf_with_children_rejects_children(self):
        with pytest.raises(SubscriptionError):
            leaf().with_children([leaf()])

    def test_const_with_children_rejects_children(self):
        with pytest.raises(SubscriptionError):
            TRUE.with_children([leaf()])

    def test_not_with_children_requires_one(self):
        with pytest.raises(SubscriptionError):
            NotNode(leaf()).with_children([leaf(), leaf()])

    def test_connective_rejects_non_nodes(self):
        with pytest.raises(SubscriptionError):
            AndNode([leaf(), "nope"])

    def test_leaf_requires_predicate(self):
        with pytest.raises(SubscriptionError):
            PredicateLeaf("nope")


class TestBuilder:
    def test_operator_overloads(self):
        assert (P("x") == 1).predicate.operator is Operator.EQ
        assert (P("x") != 1).predicate.operator is Operator.NE
        assert (P("x") < 1).predicate.operator is Operator.LT
        assert (P("x") <= 1).predicate.operator is Operator.LE
        assert (P("x") > 1).predicate.operator is Operator.GT
        assert (P("x") >= 1).predicate.operator is Operator.GE

    def test_named_constructors(self):
        assert P("x").in_([1, 2]).predicate.operator is Operator.IN_SET
        assert P("x").not_in([1]).predicate.operator is Operator.NOT_IN_SET
        assert P("x").prefix("a").predicate.operator is Operator.PREFIX
        assert P("x").contains("a").predicate.operator is Operator.CONTAINS

    def test_between_builds_two_predicate_and(self):
        tree = P("x").between(1, 5)
        assert isinstance(tree, AndNode)
        operators = {child.predicate.operator for child in tree.children}
        assert operators == {Operator.GE, Operator.LE}

    def test_and_flattens_single_child(self):
        node = And(P("x") == 1)
        assert isinstance(node, PredicateLeaf)

    def test_or_flattens_single_child(self):
        node = Or(P("x") == 1)
        assert isinstance(node, PredicateLeaf)

    def test_and_requires_children(self):
        with pytest.raises(SubscriptionError):
            And()

    def test_or_requires_children(self):
        with pytest.raises(SubscriptionError):
            Or()

    def test_accepts_raw_predicates(self):
        tree = And(Predicate("a", Operator.EQ, 1), P("b") == 2)
        assert isinstance(tree, AndNode)
        assert len(tree.children) == 2

    def test_not_wraps_node(self):
        node = Not(P("x") == 1)
        assert isinstance(node, NotNode)

    def test_p_requires_attribute(self):
        with pytest.raises(SubscriptionError):
            P("")
