"""Cross-module integration scenarios.

Each test drives a realistic end-to-end story through the public API:
churn (subscribe/unsubscribe) under pruning, adaptive pruning applied to
a live broker network, and optimum search against distributed routing
cost.
"""


import pytest

from repro import (
    AdaptivePruner,
    BrokerNetwork,
    Dimension,
    PruningSchedule,
    SystemConditions,
    line_topology,
)
from repro.core.optimum import OptimumSearch
from repro.matching.counting import CountingMatcher


@pytest.fixture(scope="module")
def small_world(workload):
    subscriptions = workload.generate_subscriptions(60)
    events = workload.generate_events(80).events
    return subscriptions, events, workload.estimator()


class TestChurnUnderPruning:
    def test_unsubscribe_after_pruning_keeps_tables_consistent(
        self, small_world
    ):
        subscriptions, events, estimator = small_world
        network = BrokerNetwork(line_topology(3))
        broker_ids = network.topology.broker_ids
        for index, subscription in enumerate(subscriptions):
            network.subscribe(
                broker_ids[index % 3], "c%d" % index, subscription.tree,
            )
        schedule = PruningSchedule.build(
            subscriptions, estimator, Dimension.NETWORK
        )
        pruned = schedule.replay(schedule.prefix_count(0.5))
        per_broker = {
            broker_id: {
                entry.subscription_id: pruned[entry.subscription_id].tree
                for entry in network.brokers[broker_id].non_local_entries()
            }
            for broker_id in broker_ids
        }
        network.apply_pruned_tables(per_broker)

        # Unsubscribe a third of the population, pruned entries included.
        removed = {s.id for s in subscriptions[::3]}
        for sub_id in sorted(removed):
            network.unsubscribe(sub_id)

        surviving = {s.id: s for s in subscriptions if s.id not in removed}
        for index, event in enumerate(events):
            result = network.publish(broker_ids[index % 3], event)
            got = {d.subscription_id for d in result.deliveries}
            expected = {
                sub_id for sub_id, sub in surviving.items()
                if sub.tree.evaluate(event)
            }
            assert got == expected
        for broker in network.brokers.values():
            assert set(broker.entries) == set(surviving)


class TestAdaptiveOnLiveNetwork:
    def test_adaptive_batches_feed_broker_tables(self, small_world):
        subscriptions, events, estimator = small_world
        network = BrokerNetwork(line_topology(3))
        broker_ids = network.topology.broker_ids
        for index, subscription in enumerate(subscriptions):
            network.subscribe(
                broker_ids[index % 3], "c%d" % index, subscription.tree,
            )
        baseline = [
            sorted(
                (d.client, d.subscription_id)
                for d in network.publish(broker_ids[i % 3], e).deliveries
            )
            for i, e in enumerate(events)
        ]

        pruner = AdaptivePruner(subscriptions, estimator)
        table_bytes = pruner.engine.total_size_bytes
        phases = [
            SystemConditions(table_bytes, table_bytes, 0.2, 0.2),   # memory
            SystemConditions(0, table_bytes, 0.95, 0.2),            # network
            SystemConditions(0, table_bytes, 0.2, 0.95),            # cpu
        ]
        seen_dimensions = set()
        for conditions in phases:
            pruner.optimize(conditions, batch_size=20)
            seen_dimensions.add(pruner.current_dimension)
            pruned = pruner.engine.pruned_subscriptions()
            per_broker = {
                broker_id: {
                    entry.subscription_id: pruned[entry.subscription_id].tree
                    for entry in network.brokers[broker_id].non_local_entries()
                }
                for broker_id in broker_ids
            }
            network.apply_pruned_tables(per_broker)
            outcome = [
                sorted(
                    (d.client, d.subscription_id)
                    for d in network.publish(broker_ids[i % 3], e).deliveries
                )
                for i, e in enumerate(events)
            ]
            assert outcome == baseline
        assert len(seen_dimensions) == 3


class TestOptimumOnMatchingCost:
    def test_search_beats_endpoints(self, small_world):
        """The optimum found is no worse than both sweep endpoints."""
        subscriptions, events, estimator = small_world
        schedule = PruningSchedule.build(
            subscriptions, estimator, Dimension.NETWORK
        )

        def cost(pruned, _count):
            matcher = CountingMatcher()
            matcher.register_all(pruned.values())
            matcher.rebuild()
            total = 0
            for event in events[:40]:
                total += len(matcher.match(event))
            # deliberately deterministic: count-based cost with a memory term
            associations = sum(s.leaf_count for s in pruned.values())
            return total + associations * 0.5

        search = OptimumSearch(schedule, cost, coarse_points=5, refine_rounds=1)
        result = search.search()
        evaluated = dict(result.evaluations)
        assert result.cost <= evaluated[0]
        assert result.cost <= evaluated[schedule.total]
