"""Tests for workload sampling primitives."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.util.rng import derive_seed, make_rng
from repro.workloads.distributions import (
    Categorical,
    PiecewiseLinear,
    lognormal_cdf_table,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(10, 1.0).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(10, 1.2)
        assert all(weights[i] >= weights[i + 1] for i in range(9))

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert np.allclose(weights, 0.25)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)
        with pytest.raises(WorkloadError):
            zipf_weights(5, -1.0)


class TestCategorical:
    def test_sample_frequencies_track_weights(self):
        rng = make_rng(7, "cat")
        dist = Categorical(["a", "b"], [0.8, 0.2])
        draws = dist.sample(rng, 5000)
        frequency = draws.count("a") / 5000
        assert frequency == pytest.approx(0.8, abs=0.03)

    def test_sample_one(self):
        rng = make_rng(7, "one")
        dist = Categorical([1, 2, 3], [1, 1, 1])
        assert dist.sample_one(rng) in (1, 2, 3)

    def test_statistics_match_probabilities(self):
        dist = Categorical(["a", "b"], [3, 1])
        stats = dist.statistics()
        from repro.subscriptions.predicates import Operator

        assert stats.predicate_probability(Operator.EQ, "a") == pytest.approx(0.75)

    def test_quantile_value(self):
        dist = Categorical(["a", "b", "c"], [0.5, 0.3, 0.2])
        assert dist.quantile_value(0.4) == "a"
        assert dist.quantile_value(0.7) == "b"
        assert dist.quantile_value(1.0) == "c"

    def test_validation(self):
        with pytest.raises(WorkloadError):
            Categorical([], [])
        with pytest.raises(WorkloadError):
            Categorical(["a"], [-1])


class TestPiecewiseLinear:
    @pytest.fixture()
    def dist(self):
        return PiecewiseLinear([0.0, 10.0, 20.0], [0.0, 0.5, 1.0], round_digits=None)

    def test_samples_within_support(self, dist):
        rng = make_rng(3, "pw")
        values = dist.sample(rng, 1000)
        assert values.min() >= 0.0
        assert values.max() <= 20.0

    def test_inverse_cdf_sampling_matches_declared_cdf(self, dist):
        rng = make_rng(3, "pw2")
        values = dist.sample(rng, 20000)
        # P(X <= 10) should be ~0.5 by construction
        assert (values <= 10.0).mean() == pytest.approx(0.5, abs=0.02)

    def test_quantile(self, dist):
        assert dist.quantile(0.5) == pytest.approx(10.0)
        assert dist.quantile(0.75) == pytest.approx(15.0)

    def test_statistics_agree_with_quantiles(self, dist):
        from repro.subscriptions.predicates import Operator

        stats = dist.statistics()
        assert stats.predicate_probability(Operator.LE, 15.0) == pytest.approx(0.75)

    def test_rounding(self):
        dist = PiecewiseLinear([0.0, 1.0], [0.0, 1.0], round_digits=1)
        rng = make_rng(1, "round")
        values = dist.sample(rng, 100)
        assert np.allclose(values, np.round(values, 1))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PiecewiseLinear([0.0], [0.0])
        with pytest.raises(WorkloadError):
            PiecewiseLinear([0.0, 1.0], [0.1, 1.0])
        with pytest.raises(WorkloadError):
            PiecewiseLinear([1.0, 0.0], [0.0, 1.0])
        with pytest.raises(WorkloadError):
            PiecewiseLinear([0.0, 1.0], [0.0, 0.9])


class TestLognormalTable:
    def test_cdf_properties(self):
        support, cdf = lognormal_cdf_table(12.0, 0.9, 0.5, 500.0)
        assert cdf[0] == 0.0
        assert cdf[-1] == 1.0
        assert np.all(np.diff(cdf) >= 0)
        assert np.all(np.diff(support) > 0)

    def test_median_is_near_declared(self):
        support, cdf = lognormal_cdf_table(12.0, 0.9, 0.5, 500.0)
        median = float(np.interp(0.5, cdf, support))
        assert median == pytest.approx(12.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            lognormal_cdf_table(-1, 1, 1, 10)
        with pytest.raises(WorkloadError):
            lognormal_cdf_table(5, 1, 10, 1)


class TestSeeding:
    def test_derive_seed_is_stable(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_derive_seed_separates_labels(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")
        assert derive_seed(42, "x", 1) != derive_seed(42, "x", 2)

    def test_make_rng_reproducible(self):
        a = make_rng(42, "stream").random(5)
        b = make_rng(42, "stream").random(5)
        assert np.allclose(a, b)
