"""Tests for the greedy merging baseline."""

import pytest

from repro.baselines.merging import GreedyMerger, merge_pair
from repro.errors import MatchingError
from repro.events import Event
from repro.subscriptions.builder import And, Or, P
from repro.subscriptions.subscription import Subscription

from tests import strategies
from hypothesis import strategies as st


class TestMergePair:
    def test_widens_upper_bounds(self):
        a = Subscription(1, And(P("cat") == "x", P("price") <= 10))
        b = Subscription(2, And(P("cat") == "x", P("price") <= 20))
        merged = merge_pair(a, b)
        probes = [Event({"cat": "x", "price": 15})]
        assert merged.evaluate(probes[0])

    def test_unions_equalities_into_set(self):
        a = Subscription(1, And(P("cat") == "x", P("price") <= 10))
        b = Subscription(2, And(P("cat") == "y", P("price") <= 10))
        merged = merge_pair(a, b)
        assert merged.evaluate(Event({"cat": "x", "price": 5}))
        assert merged.evaluate(Event({"cat": "y", "price": 5}))
        assert not merged.evaluate(Event({"cat": "z", "price": 5}))

    def test_drops_attributes_missing_on_one_side(self):
        a = Subscription(1, And(P("cat") == "x", P("rating") >= 4))
        b = Subscription(2, And(P("cat") == "x", P("price") <= 10))
        merged = merge_pair(a, b)
        # only cat survives
        assert merged.evaluate(Event({"cat": "x"}))

    def test_non_conjunctive_rejected(self):
        a = Subscription(1, Or(P("a") == 1, P("b") == 2))
        b = Subscription(2, P("a") == 1)
        assert merge_pair(a, b) is None

    def test_no_common_attributes_rejected(self):
        a = Subscription(1, P("a") == 1)
        b = Subscription(2, P("b") == 2)
        assert merge_pair(a, b) is None

    def test_merger_covers_both_inputs_on_events(self, workload):
        """Core property: the merger matches every event either input
        matches."""
        subs = [
            s
            for s in workload.generate_subscriptions(60)
            if merge_pair(s, s) is not None  # conjunctive only
        ]
        events = workload.generate_events(60).events
        merged_any = 0
        for i in range(0, len(subs) - 1, 2):
            merger = merge_pair(subs[i], subs[i + 1])
            if merger is None:
                continue
            merged_any += 1
            for event in events:
                if subs[i].tree.evaluate(event) or subs[i + 1].tree.evaluate(event):
                    assert merger.evaluate(event)
        assert merged_any > 0


class TestGreedyMerger:
    def test_reduces_table_size(self, simple_estimator):
        subs = [
            Subscription(i, And(P("cat") == c, P("price") <= float(p)))
            for i, (c, p) in enumerate(
                [("a", 10), ("a", 20), ("b", 10), ("b", 30), ("c", 15)]
            )
        ]
        merger = GreedyMerger(simple_estimator, max_merger_selectivity=1.0)
        merged = merger.merge(subs, target_count=2)
        assert len(merged) <= len(subs)
        assert len(merged) >= 2

    def test_merged_table_covers_inputs(self, simple_estimator):
        subs = [
            Subscription(i, And(P("cat") == c, P("price") <= float(p)))
            for i, (c, p) in enumerate(
                [("a", 10), ("a", 20), ("b", 10), ("b", 30)]
            )
        ]
        merger = GreedyMerger(simple_estimator, max_merger_selectivity=1.0)
        merged = merger.merge(subs, target_count=1)
        events = [
            Event({"cat": c, "price": float(p)})
            for c in "abc"
            for p in (5, 15, 25, 50)
        ]
        for event in events:
            if any(s.tree.evaluate(event) for s in subs):
                assert any(m.tree.evaluate(event) for m in merged)

    def test_selectivity_budget_limits_merging(self, simple_estimator):
        subs = [
            Subscription(0, And(P("cat") == "a", P("price") <= 10.0)),
            Subscription(1, And(P("cat") == "b", P("price") <= 100.0)),
        ]
        strict = GreedyMerger(simple_estimator, max_merger_selectivity=0.01)
        assert len(strict.merge(subs, target_count=1)) == 2  # refused

    def test_target_validation(self, simple_estimator):
        with pytest.raises(MatchingError):
            GreedyMerger(simple_estimator).merge([], target_count=0)

    def test_budget_validation(self, simple_estimator):
        with pytest.raises(MatchingError):
            GreedyMerger(simple_estimator, max_merger_selectivity=0.0)
