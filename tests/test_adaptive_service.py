"""End-to-end equivalence and lifecycle of the adaptive service loop.

The adaptive controller may only change what *inner brokers forward* —
never what subscribers receive.  These tests run identical workloads
through a controller-off oracle service and an adaptive twin and require
bit-identical delivery streams, under subscription churn and a mid-run
drift from auction traffic to tree-heavy traffic.  Lifecycle tests drive
:meth:`AdaptiveController.run_cycle` with explicit conditions to pin the
dimension policy, the un-prune path, and the churn-restore path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import AdaptiveConfig
from repro.core.adaptive import SystemConditions
from repro.events import Event
from repro.routing.topology import line_topology
from repro.service import PubSubService
from repro.subscriptions.builder import And, P
from repro.workloads.auction import AuctionWorkload, AuctionWorkloadConfig
from repro.workloads.tree_heavy import TreeHeavyConfig, TreeHeavyWorkload

from tests.strategies import events as event_strategy
from tests.strategies import trees


def _adaptive_config(**overrides):
    """A config that keeps the memory signal permanently stressed, so the
    controller prunes as soon as the estimator is warm."""
    settings_ = dict(
        cycle_events=40,
        batch_size=4,
        memory_budget_bytes=1,
        min_observations=20,
    )
    settings_.update(overrides)
    return AdaptiveConfig(**settings_)


def _stream(session):
    """One session's delivery stream, bit-for-bit."""
    return [
        (
            notification.sequence,
            notification.subscription_id,
            notification.delivery_seq,
            tuple(sorted(notification.event.items())),
        )
        for notification in session.sink.notifications
    ]


def _run_scenario(adaptive):
    """Auction phase → churn → tree-heavy phase, on one fresh service.

    Returns ``(per-client streams, controller report or None)``.  Every
    non-deterministic input is seeded, so two runs differ only in the
    ``adaptive`` argument.
    """
    auction = AuctionWorkload(AuctionWorkloadConfig(seed=1234))
    tree_heavy = TreeHeavyWorkload(TreeHeavyConfig(seed=99, attribute_count=6, depth=1))
    with PubSubService(
        topology=line_topology(4), max_batch=16, adaptive=adaptive
    ) as service:
        publisher = service.connect("b0", "publisher")
        clients = [
            service.connect("b%d" % (1 + index), "client%d" % index)
            for index in range(3)
        ]
        handles = []
        for index, subscription in enumerate(auction.generate_subscriptions(30)):
            handles.append(clients[index % 3].subscribe(subscription.tree))
        for event in auction.generate_events(240):
            publisher.publish(event)
        service.flush()
        # Churn: retire a third of the handles, register tree-heavy ones.
        for handle in handles[::3]:
            handle.unsubscribe()
        for index, subscription in enumerate(
            tree_heavy.generate_subscriptions(9)
        ):
            clients[index % 3].subscribe(subscription.tree)
        for event in tree_heavy.generate_events(240):
            publisher.publish(event)
        service.flush()
        streams = {client.client: _stream(client) for client in clients}
        report = service.adaptive.report() if service.adaptive is not None else None
    return streams, report


class TestDeliveryEquivalence:
    def test_streams_identical_under_churn_and_drift(self):
        oracle, none_report = _run_scenario(adaptive=None)
        adaptive, report = _run_scenario(adaptive=_adaptive_config())
        assert none_report is None
        assert report is not None
        # The controller must have actually done something, or the
        # equivalence below is vacuous.
        assert report["prunings_applied"] > 0
        assert report["bytes_reclaimed_total"] > 0
        assert adaptive == oracle

    def test_delivery_seq_gapless(self):
        streams, report = _run_scenario(adaptive=_adaptive_config())
        assert report["prunings_applied"] > 0
        for stream in streams.values():
            assert [entry[2] for entry in stream] == list(range(len(stream)))

    def test_controller_absent_without_config(self):
        with PubSubService(topology=line_topology(2)) as service:
            assert service.adaptive is None


def _warm_service(adaptive=None, subscription_count=12, event_count=80):
    """An adaptive service with registered subscriptions and warm statistics."""
    auction = AuctionWorkload(AuctionWorkloadConfig(seed=1234))
    service = PubSubService(
        topology=line_topology(3),
        max_batch=16,
        adaptive=adaptive
        or _adaptive_config(cycle_events=10**9, stop_degradation=None),
    )
    subscriber = service.connect("b2", "alice")
    for subscription in auction.generate_subscriptions(subscription_count):
        subscriber.subscribe(subscription.tree)
    publisher = service.connect("b0", "publisher")
    for event in auction.generate_events(event_count):
        publisher.publish(event)
    service.flush()
    return service


def _conditions(memory=0.0, bandwidth=0.0, cpu=0.0):
    return SystemConditions(
        memory_used_bytes=int(memory * 1000),
        memory_budget_bytes=1000,
        bandwidth_utilization=bandwidth,
        filter_saturation=cpu,
    )


class TestCycleLifecycle:
    def test_dimension_switch_shows_in_history(self):
        """Memory pressure then filter pressure: the history must show the
        controller switching dimensions mid-flight."""
        with _warm_service() as service:
            controller = service.adaptive
            assert controller.run_cycle(_conditions(memory=0.95))
            assert controller.run_cycle(_conditions(cpu=0.95))
            dimensions = [dimension for dimension, _count in controller._history]
            assert dimensions[:2] == ["mem", "eff"]

    def test_calm_system_prunes_nothing(self):
        with _warm_service() as service:
            assert service.adaptive.run_cycle(_conditions()) == []
            report = service.adaptive.report()
            assert report["prunings_applied"] == 0
            assert report["cycles"] == 1

    def test_cold_statistics_prune_nothing(self):
        with PubSubService(
            topology=line_topology(2), adaptive=_adaptive_config(min_observations=10**9)
        ) as service:
            session = service.connect("b1", "alice")
            session.subscribe(And(P("x") == 1, P("y") == 2))
            assert service.adaptive.run_cycle(_conditions(memory=0.95)) == []

    def test_unprune_restores_exact_tables(self):
        with _warm_service() as service:
            exact_bytes = service.network.table_size_bytes
            controller = service.adaptive
            assert controller.run_cycle(_conditions(memory=0.95))
            assert service.network.table_size_bytes < exact_bytes
            applied = controller.report()["prunings_applied"]
            # Still above the release low-water mark: pruning stays.
            assert controller.run_cycle(_conditions(memory=0.6)) == []
            assert service.network.table_size_bytes < exact_bytes
            # Fully becalmed: forwarding tables return to exact.
            assert controller.run_cycle(_conditions()) == []
            report = controller.report()
            assert service.network.table_size_bytes == exact_bytes
            assert report["prunings_reverted"] == applied
            assert report["subscriptions_pruned"] == 0
            assert report["bytes_reclaimed"] == 0
            assert report["bytes_reclaimed_total"] > 0

    def test_churn_restores_then_replans(self):
        """Table churn invalidates the plan: the next stressed cycle first
        un-prunes the stale application, then prunes the new table."""
        with _warm_service() as service:
            controller = service.adaptive
            assert controller.run_cycle(_conditions(memory=0.95))
            first_applied = controller.report()["prunings_applied"]
            session = service.connect("b1", "bob")
            session.subscribe(And(P("category") == "coins", P("price") <= 10.0))
            assert controller.run_cycle(_conditions(memory=0.95))
            report = controller.report()
            assert report["prunings_reverted"] == first_applied
            assert report["prunings_applied"] > first_applied

    def test_report_estimated_and_realized_deltas(self):
        with _warm_service() as service:
            controller = service.adaptive
            assert controller.run_cycle(_conditions(memory=0.95))
            report = controller.report()
            estimated = report["estimated_delta_sel"]
            realized = report["realized_delta_sel"]
            assert set(estimated) == set(realized)
            assert estimated  # at least one pruned subscription
            for sub_id, delta in realized.items():
                # Pruning generalizes: realized selectivity can only grow.
                assert delta >= 0.0
                assert estimated[sub_id] >= 0.0

    def test_run_cycle_records_conditions(self):
        with _warm_service() as service:
            service.adaptive.run_cycle(_conditions(bandwidth=0.3))
            conditions = service.adaptive.report()["last_conditions"]
            assert conditions["bandwidth_utilization"] == 0.3


@given(
    trees_=st.lists(trees(max_leaves=6), min_size=1, max_size=5),
    events_=st.lists(event_strategy(), min_size=1, max_size=30),
)
@settings(max_examples=15, deadline=None)
def test_random_workload_equivalence(trees_, events_):
    """House equivalence property: for random trees and events, adaptive-on
    delivery is bit-identical to the controller-off oracle."""

    def run(adaptive):
        with PubSubService(
            topology=line_topology(3),
            max_batch=4,
            adaptive=adaptive,
        ) as service:
            subscriber = service.connect("b2", "alice")
            for tree in trees_:
                subscriber.subscribe(tree)
            publisher = service.connect("b0", "publisher")
            for event in events_:
                publisher.publish(event)
            service.flush()
            if service.adaptive is not None:
                # Force at least one stressed cycle regardless of volume.
                service.adaptive.run_cycle(
                    SystemConditions(1, 1, 0.0, 0.0)
                )
                for event in events_:
                    publisher.publish(event)
                service.flush()
                return _stream(subscriber)
            for event in events_:
                publisher.publish(event)
            service.flush()
            return _stream(subscriber)

    oracle = run(None)
    adaptive = run(_adaptive_config(cycle_events=8, min_observations=1))
    assert adaptive == oracle
