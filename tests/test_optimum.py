"""Tests for the optimum pruning-count search (the paper's future work)."""

import pytest

from repro.core.heuristics import Dimension
from repro.core.optimum import OptimumSearch, weighted_cost
from repro.core.planner import PruningSchedule
from repro.errors import PruningError
from repro.matching.counting import CountingMatcher


@pytest.fixture(scope="module")
def schedule(workload):
    subscriptions = workload.generate_subscriptions(80)
    estimator = workload.estimator()
    return PruningSchedule.build(subscriptions, estimator, Dimension.NETWORK)


class TestSearch:
    def test_finds_known_synthetic_optimum(self, schedule):
        target = schedule.total // 3

        search = OptimumSearch(
            schedule, lambda _pruned, count: abs(count - target) ** 1.5
        )
        result = search.search()
        assert abs(result.count - target) <= max(2, schedule.total // 50)
        assert result.cost == min(cost for _c, cost in result.evaluations)

    def test_boundary_optimum_at_zero(self, schedule):
        result = OptimumSearch(schedule, lambda _p, count: float(count)).search()
        assert result.count == 0
        assert result.proportion == 0.0

    def test_boundary_optimum_at_total(self, schedule):
        result = OptimumSearch(schedule, lambda _p, count: float(-count)).search()
        assert result.count == schedule.total
        assert result.proportion == 1.0

    def test_evaluations_are_cached(self, schedule):
        calls = []

        def cost(_pruned, count):
            calls.append(count)
            return abs(count - 5)

        OptimumSearch(schedule, cost, refine_rounds=3).search()
        assert len(calls) == len(set(calls))  # never re-evaluated

    def test_refinement_increases_resolution(self, schedule):
        target = schedule.total // 2 + 1
        coarse = OptimumSearch(
            schedule, lambda _p, c: abs(c - target), refine_rounds=0,
            coarse_points=4,
        ).search()
        refined = OptimumSearch(
            schedule, lambda _p, c: abs(c - target), refine_rounds=3,
            coarse_points=4,
        ).search()
        assert abs(refined.count - target) <= abs(coarse.count - target)

    def test_parameter_validation(self, schedule):
        with pytest.raises(PruningError):
            OptimumSearch(schedule, lambda p, c: 0.0, coarse_points=2)
        with pytest.raises(PruningError):
            OptimumSearch(schedule, lambda p, c: 0.0, refine_points=2)

    def test_real_cost_functional_runs(self, schedule, workload):
        """End-to-end: minimize measured filtering time per event."""
        events = workload.generate_events(40).events

        def cost(pruned, _count):
            matcher = CountingMatcher()
            matcher.register_all(pruned.values())
            matcher.rebuild()
            matcher.statistics.reset()
            for event in events:
                matcher.match(event)
            return matcher.statistics.mean_time_per_event

        result = OptimumSearch(schedule, cost, coarse_points=4,
                               refine_rounds=1, refine_points=3).search()
        assert 0 <= result.count <= schedule.total
        assert result.cost > 0


class TestWeightedCost:
    def test_memory_component(self, schedule):
        initial = sum(s.leaf_count for s in schedule.subscriptions)
        cost = weighted_cost(
            time_weight=0.0,
            memory_weight=1.0,
            initial_associations=initial,
        )
        full = schedule.replay(schedule.total)
        zero = schedule.replay(0)
        assert cost(zero, 0) == pytest.approx(1.0)
        assert cost(full, schedule.total) < 1.0

    def test_time_component_requires_measure(self):
        with pytest.raises(PruningError):
            weighted_cost(time_weight=1.0)

    def test_network_component_requires_measure(self):
        with pytest.raises(PruningError):
            weighted_cost(time_weight=0.0, network_weight=1.0)

    def test_memory_component_requires_baseline(self):
        with pytest.raises(PruningError):
            weighted_cost(time_weight=0.0, memory_weight=1.0)

    def test_linear_combination(self, schedule):
        initial = sum(s.leaf_count for s in schedule.subscriptions)
        cost = weighted_cost(
            time_weight=2.0,
            memory_weight=3.0,
            measure_time=lambda _p: 0.5,
            initial_associations=initial,
        )
        zero = schedule.replay(0)
        assert cost(zero, 0) == pytest.approx(2.0 * 0.5 + 3.0 * 1.0)
