"""Shared fixtures for the test suite.

Also provides a minimal fallback for the ``timeout`` marker when the
``pytest-timeout`` plugin is not installed (CI installs it; bare local
environments may not).  The fallback arms a SIGALRM-based interval
timer around each marked test, which interrupts even stuck
``lock.acquire()``/``Condition.wait()``/``Thread.join()`` calls in the
main thread — enough to keep a deadlocked concurrency test from
hanging the whole suite.  Only active on platforms with ``SIGALRM``
(i.e. not Windows); elsewhere the marker is registered but inert.
"""

from __future__ import annotations

import signal
from typing import Iterator

import pytest

from repro.selectivity.estimator import SelectivityEstimator
from repro.selectivity.statistics import (
    CategoricalStatistics,
    ContinuousStatistics,
    EventStatistics,
)
from repro.workloads.auction import AuctionWorkload, AuctionWorkloadConfig

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


class _TestTimeout(Exception):
    """Raised by the SIGALRM fallback when a marked test overruns."""


def pytest_configure(config: pytest.Config) -> None:
    if not _HAVE_PYTEST_TIMEOUT:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer than "
            "``seconds`` (SIGALRM fallback; pytest-timeout not installed)",
        )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item) -> Iterator[None]:
    marker = item.get_closest_marker("timeout")
    if (
        _HAVE_PYTEST_TIMEOUT
        or marker is None
        or not hasattr(signal, "SIGALRM")
    ):
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 300.0

    def _on_alarm(signum: int, frame: object) -> None:
        raise _TestTimeout(
            "%s exceeded the %.0fs timeout" % (item.nodeid, seconds)
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def workload() -> AuctionWorkload:
    """A small, deterministic auction workload shared across tests."""
    return AuctionWorkload(AuctionWorkloadConfig(seed=1234))


@pytest.fixture(scope="session")
def auction_events(workload):
    """A batch of 400 auction events."""
    return workload.generate_events(400)


@pytest.fixture(scope="session")
def auction_subscriptions(workload):
    """200 auction subscriptions (ids 0..199)."""
    return workload.generate_subscriptions(200)


@pytest.fixture(scope="session")
def auction_estimator(workload) -> SelectivityEstimator:
    """Selectivity estimator over the auction workload statistics."""
    return workload.estimator()


@pytest.fixture()
def simple_statistics() -> EventStatistics:
    """Small hand-built statistics for exact-value assertions."""
    return EventStatistics(
        {
            "cat": CategoricalStatistics({"a": 0.25, "b": 0.5, "c": 0.25}),
            "price": ContinuousStatistics(
                [0.0, 10.0, 20.0, 100.0], [0.0, 0.5, 0.8, 1.0]
            ),
            "flag": CategoricalStatistics({True: 0.4, False: 0.6}),
        }
    )


@pytest.fixture()
def simple_estimator(simple_statistics) -> SelectivityEstimator:
    """Estimator over :func:`simple_statistics`."""
    return SelectivityEstimator(simple_statistics)
