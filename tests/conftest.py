"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.selectivity.estimator import SelectivityEstimator
from repro.selectivity.statistics import (
    CategoricalStatistics,
    ContinuousStatistics,
    EventStatistics,
)
from repro.workloads.auction import AuctionWorkload, AuctionWorkloadConfig


@pytest.fixture(scope="session")
def workload() -> AuctionWorkload:
    """A small, deterministic auction workload shared across tests."""
    return AuctionWorkload(AuctionWorkloadConfig(seed=1234))


@pytest.fixture(scope="session")
def auction_events(workload):
    """A batch of 400 auction events."""
    return workload.generate_events(400)


@pytest.fixture(scope="session")
def auction_subscriptions(workload):
    """200 auction subscriptions (ids 0..199)."""
    return workload.generate_subscriptions(200)


@pytest.fixture(scope="session")
def auction_estimator(workload) -> SelectivityEstimator:
    """Selectivity estimator over the auction workload statistics."""
    return workload.estimator()


@pytest.fixture()
def simple_statistics() -> EventStatistics:
    """Small hand-built statistics for exact-value assertions."""
    return EventStatistics(
        {
            "cat": CategoricalStatistics({"a": 0.25, "b": 0.5, "c": 0.25}),
            "price": ContinuousStatistics(
                [0.0, 10.0, 20.0, 100.0], [0.0, 0.5, 0.8, 1.0]
            ),
            "flag": CategoricalStatistics({True: 0.4, False: 0.6}),
        }
    )


@pytest.fixture()
def simple_estimator(simple_statistics) -> SelectivityEstimator:
    """Estimator over :func:`simple_statistics`."""
    return SelectivityEstimator(simple_statistics)
