"""Multi-producer soak tests: concurrency is observationally invisible.

``PRODUCERS`` threads hammer one shared :class:`~repro.service.Ingress`
(through plain ``service.publish`` calls) while rounds of
subscribe/unsubscribe/replace churn run at barriers between them.  The
delivered multiset of ``(event, subscription_id)`` pairs must be
*identical* to a sequential oracle — the same schedule replayed
single-threaded on a fresh service — and the subscriber's per-session
``delivery_seq`` numbers must form a gapless range.  Variants cover the
direct (unbounded) path, a ``block``-policy bounded queue drained by a
concurrent consumer thread (lossless), and a ``drop_oldest`` queue
(lossy, but conservation holds: delivered + dead-lettered == oracle).

Events are unique (producer, value, round triples), so multiset
equality is exact.  Sizes scale with ``REPRO_SOAK_PRODUCERS``,
``REPRO_SOAK_EVENTS`` (per producer per round) and ``REPRO_SOAK_ROUNDS``
environment knobs; defaults keep one run well under a second so the
suite can absorb many repetitions.
"""

import os
import threading
from collections import Counter

import pytest

from repro.events import Event
from repro.routing.topology import line_topology
from repro.service import CollectingSink, DeadLetterSink, PubSubService
from repro.subscriptions.builder import P

PRODUCERS = int(os.environ.get("REPRO_SOAK_PRODUCERS", "8"))
EVENTS_PER_PRODUCER = int(os.environ.get("REPRO_SOAK_EVENTS", "25"))
ROUNDS = int(os.environ.get("REPRO_SOAK_ROUNDS", "3"))

assert PRODUCERS >= 8, "the soak must exercise at least 8 producers"


def make_service(max_batch=7):
    # An awkward max_batch (not a divisor of anything) so flushes are
    # triggered from many different producer threads mid-round.
    return PubSubService(topology=line_topology(2), max_batch=max_batch)


def produce(service, producer, round_no):
    origin = "b0" if producer % 2 == 0 else "b1"
    for value in range(EVENTS_PER_PRODUCER):
        service.publish(
            origin,
            Event(
                {
                    "producer": producer,
                    "parity": producer % 2,
                    "value": value,
                    "round": round_no,
                }
            ),
        )


def churn(session, handles, round_no):
    """Deterministic subscription churn before round ``round_no``.

    Runs single-threaded (at the barrier between rounds) in both the
    concurrent run and the sequential oracle, in the same order — so
    the server-assigned subscription ids line up between the two runs.
    """
    if round_no == 0:
        handles["all"] = session.subscribe(P("value") >= 0)
        handles["even"] = session.subscribe(P("parity") == 0)
    elif round_no == 1:
        handles["even"].unsubscribe()
        handles["low"] = session.subscribe(P("value") <= EVENTS_PER_PRODUCER // 2)
        handles["all"].replace(P("value") >= 1)
    else:
        handles["odd"] = session.subscribe(P("parity") == 1)


def run_schedule(service, session, concurrent):
    """Drive the full soak schedule; flush-join barriers between rounds."""
    handles = {}
    for round_no in range(ROUNDS):
        churn(session, handles, round_no)
        if concurrent:
            threads = [
                threading.Thread(target=produce, args=(service, p, round_no))
                for p in range(PRODUCERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for producer in range(PRODUCERS):
                produce(service, producer, round_no)
        service.flush()


def delivered_multiset(notifications):
    return Counter((n.event, n.subscription_id) for n in notifications)


def sequential_oracle(**connect_kwargs):
    """The same schedule, replayed single-threaded on a fresh service."""
    service = make_service()
    session = service.connect("b0", "subscriber", **connect_kwargs)
    run_schedule(service, session, concurrent=False)
    if session.queue is not None:
        session.drain()
    return delivered_multiset(session.sink.notifications)


@pytest.mark.timeout(90)
def test_concurrent_producers_match_sequential_oracle():
    service = make_service()
    session = service.connect("b0", "subscriber", sink=CollectingSink())
    run_schedule(service, session, concurrent=True)

    notifications = session.sink.notifications
    assert delivered_multiset(notifications) == sequential_oracle()
    # Per-session delivery sequence numbers are gapless: every
    # notification got exactly one, 0..n-1, no duplicates, no holes.
    assert sorted(n.delivery_seq for n in notifications) == list(
        range(len(notifications))
    )
    assert session.delivery_count == len(notifications)
    # Nothing left buffered, and the substrate agrees on volume.
    assert service.ingress.pending_count == 0
    assert service.publish_count == PRODUCERS * EVENTS_PER_PRODUCER * ROUNDS


@pytest.mark.timeout(90)
def test_block_policy_soak_is_lossless():
    """A slow-ish consumer on a tiny block queue loses nothing."""
    dead = DeadLetterSink()
    service = make_service()
    session = service.connect(
        "b0",
        "subscriber",
        queue_capacity=8,
        policy="block",
        dead_letter=dead,
    )
    done = threading.Event()

    def consumer():
        while True:
            if session.poll(timeout=0.05) is None and done.is_set():
                if session.poll(timeout=0) is None:
                    return

    thread = threading.Thread(target=consumer)
    thread.start()
    try:
        run_schedule(service, session, concurrent=True)
    finally:
        done.set()
        thread.join(timeout=60)
    assert not thread.is_alive()

    notifications = session.sink.notifications
    assert len(dead) == 0
    assert delivered_multiset(notifications) == sequential_oracle()
    assert sorted(n.delivery_seq for n in notifications) == list(
        range(len(notifications))
    )


@pytest.mark.timeout(90)
def test_drop_oldest_soak_conserves_every_notification():
    """Lossy policy, lossless accounting: delivered + dead == oracle."""
    dead = DeadLetterSink()
    service = make_service()
    session = service.connect(
        "b0",
        "subscriber",
        queue_capacity=4,
        policy="drop_oldest",
        dead_letter=dead,
    )
    run_schedule(service, session, concurrent=True)
    session.drain()

    combined = delivered_multiset(session.sink.notifications)
    combined.update(delivered_multiset(dead.notifications))
    assert combined == sequential_oracle()
    # Conservation of delivery_seq across both outcomes.
    seqs = [n.delivery_seq for n in session.sink.notifications]
    seqs += [n.delivery_seq for n in dead.notifications]
    assert sorted(seqs) == list(range(len(seqs)))
    # Every addressed notification was accepted (drop_oldest evicts the
    # *staged* one, so the incoming put always lands) and every eviction
    # is accounted for in the dead letters.
    assert session.queue.enqueued == len(seqs)
    assert session.queue.dropped == len(dead)
