"""Tests for predicate semantics (every operator, every edge case)."""

import pytest
from hypothesis import given

from repro.errors import SubscriptionError
from repro.events import Event
from repro.subscriptions.predicates import Operator, Predicate

from tests import strategies


def pred(attribute, operator, value):
    return Predicate(attribute, operator, value)


class TestEqualityOperators:
    def test_eq_matches_equal_value(self):
        assert pred("a", Operator.EQ, 5).evaluate(Event({"a": 5}))

    def test_eq_int_float_equivalence(self):
        assert pred("a", Operator.EQ, 5).evaluate(Event({"a": 5.0}))

    def test_eq_rejects_different_value(self):
        assert not pred("a", Operator.EQ, 5).evaluate(Event({"a": 6}))

    def test_eq_never_equates_bool_and_int(self):
        assert not pred("a", Operator.EQ, True).evaluate(Event({"a": 1}))
        assert not pred("a", Operator.EQ, 1).evaluate(Event({"a": True}))

    def test_eq_never_equates_string_and_number(self):
        assert not pred("a", Operator.EQ, "5").evaluate(Event({"a": 5}))

    def test_ne_requires_presence(self):
        assert not pred("a", Operator.NE, 5).evaluate(Event({"b": 1}))

    def test_ne_matches_other_value(self):
        assert pred("a", Operator.NE, 5).evaluate(Event({"a": 6}))

    def test_ne_rejects_equal_value(self):
        assert not pred("a", Operator.NE, 5).evaluate(Event({"a": 5}))

    def test_ne_across_kinds_is_fulfilled(self):
        # a string value is "not equal" to a numeric constant
        assert pred("a", Operator.NE, 5).evaluate(Event({"a": "five"}))


class TestRangeOperators:
    @pytest.mark.parametrize(
        "operator,value,expected",
        [
            (Operator.LT, 4, True),
            (Operator.LT, 5, False),
            (Operator.LE, 5, True),
            (Operator.LE, 5.001, False),
            (Operator.GT, 6, True),
            (Operator.GT, 5, False),
            (Operator.GE, 5, True),
            (Operator.GE, 4.999, False),
        ],
    )
    def test_numeric_boundaries(self, operator, value, expected):
        # event value 5; predicate is (a op value) meaning value is the constant
        probe = Predicate("a", operator, 5)
        assert probe.test(value) is expected

    def test_string_lexicographic_comparison(self):
        assert pred("s", Operator.LT, "m").evaluate(Event({"s": "abc"}))
        assert not pred("s", Operator.LT, "m").evaluate(Event({"s": "zzz"}))

    def test_kind_mismatch_is_unfulfilled(self):
        assert not pred("a", Operator.LT, 10).evaluate(Event({"a": "str"}))
        assert not pred("a", Operator.LT, "m").evaluate(Event({"a": 3}))

    def test_bool_event_value_is_not_ordered(self):
        assert not pred("a", Operator.LT, 10).evaluate(Event({"a": True}))

    def test_bool_constant_rejected(self):
        with pytest.raises(SubscriptionError):
            Predicate("a", Operator.LE, True)


class TestSetOperators:
    def test_in_set_matches_member(self):
        probe = pred("a", Operator.IN_SET, frozenset({1, 2, 3}))
        assert probe.evaluate(Event({"a": 2}))

    def test_in_set_rejects_non_member(self):
        probe = pred("a", Operator.IN_SET, frozenset({1, 2, 3}))
        assert not probe.evaluate(Event({"a": 4}))

    def test_not_in_set_requires_presence(self):
        probe = pred("a", Operator.NOT_IN_SET, frozenset({1}))
        assert not probe.evaluate(Event({}))

    def test_not_in_set_matches_non_member(self):
        probe = pred("a", Operator.NOT_IN_SET, frozenset({1}))
        assert probe.evaluate(Event({"a": 2}))

    def test_accepts_list_value(self):
        probe = Predicate("a", Operator.IN_SET, [1, 2])
        assert probe.evaluate(Event({"a": 1}))

    def test_empty_set_rejected(self):
        with pytest.raises(SubscriptionError):
            Predicate("a", Operator.IN_SET, frozenset())

    def test_scalar_value_rejected(self):
        with pytest.raises(SubscriptionError):
            Predicate("a", Operator.IN_SET, 5)


class TestStringOperators:
    def test_prefix(self):
        assert pred("s", Operator.PREFIX, "ab").evaluate(Event({"s": "abc"}))
        assert not pred("s", Operator.PREFIX, "ab").evaluate(Event({"s": "ba"}))

    def test_not_prefix_requires_presence(self):
        assert not pred("s", Operator.NOT_PREFIX, "ab").evaluate(Event({}))

    def test_not_prefix(self):
        assert pred("s", Operator.NOT_PREFIX, "ab").evaluate(Event({"s": "ba"}))

    def test_contains(self):
        assert pred("s", Operator.CONTAINS, "bc").evaluate(Event({"s": "abcd"}))
        assert not pred("s", Operator.CONTAINS, "xy").evaluate(Event({"s": "abcd"}))

    def test_not_contains(self):
        assert pred("s", Operator.NOT_CONTAINS, "xy").evaluate(Event({"s": "abcd"}))

    def test_string_op_on_numeric_value_unfulfilled(self):
        assert not pred("s", Operator.PREFIX, "a").evaluate(Event({"s": 5}))
        assert not pred("s", Operator.NOT_PREFIX, "a").evaluate(Event({"s": 5}))

    def test_string_op_requires_string_constant(self):
        with pytest.raises(SubscriptionError):
            Predicate("s", Operator.PREFIX, 5)


class TestComplement:
    @given(strategies.predicates(), strategies.events())
    def test_complement_is_presence_conditioned_negation(self, predicate, event):
        """complement(p) holds iff the attribute is present and p fails."""
        complement = predicate.complemented
        present = predicate.attribute in event
        assert complement.evaluate(event) == (
            present and not predicate.evaluate(event)
        )

    @given(strategies.predicates())
    def test_double_complement_is_identity(self, predicate):
        assert predicate.complemented.complemented == predicate

    def test_all_operators_have_complements(self):
        for operator in Operator:
            assert operator.complement.complement is operator


class TestPredicateObject:
    def test_equality_and_hash(self):
        a = pred("a", Operator.LE, 5)
        b = pred("a", Operator.LE, 5)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_operator(self):
        assert pred("a", Operator.LE, 5) != pred("a", Operator.LT, 5)

    def test_size_grows_with_attribute_length(self):
        small = pred("a", Operator.EQ, 1)
        large = pred("a" * 10, Operator.EQ, 1)
        assert large.size_bytes > small.size_bytes

    def test_size_counts_set_members(self):
        one = pred("a", Operator.IN_SET, frozenset({1}))
        three = pred("a", Operator.IN_SET, frozenset({1, 2, 3}))
        assert three.size_bytes > one.size_bytes

    def test_sort_key_total_order_is_deterministic(self):
        probes = [
            pred("a", Operator.EQ, 1),
            pred("a", Operator.LE, 5),
            pred("b", Operator.EQ, "x"),
            pred("a", Operator.IN_SET, frozenset({1, 2})),
        ]
        assert sorted(probes, key=lambda p: p.sort_key()) == sorted(
            reversed(probes), key=lambda p: p.sort_key()
        )

    def test_rejects_empty_attribute(self):
        with pytest.raises(SubscriptionError):
            Predicate("", Operator.EQ, 1)

    def test_rejects_non_operator(self):
        with pytest.raises(SubscriptionError):
            Predicate("a", "==", 1)

    def test_repr_mentions_operator(self):
        assert "<=" in repr(pred("a", Operator.LE, 5))
