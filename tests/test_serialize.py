"""Tests for subscription tree serialization (dict and binary codecs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SubscriptionError
from repro.subscriptions.builder import And, Not, Or, P
from repro.subscriptions.nodes import ConstNode, PredicateLeaf
from repro.subscriptions.normalize import normalize
from repro.subscriptions.predicates import Operator, Predicate
from repro.subscriptions.serialize import (
    OP_ACTIONS,
    decode_node,
    encode_node,
    node_from_dict,
    node_to_dict,
    op_from_dict,
    op_to_dict,
    subscription_from_dict,
    subscription_to_dict,
)
from repro.subscriptions.subscription import Subscription

from tests import strategies

SAMPLE_TREES = [
    PredicateLeaf(Predicate("a", Operator.EQ, 5)),
    PredicateLeaf(Predicate("a", Operator.EQ, True)),
    PredicateLeaf(Predicate("a", Operator.LE, 2.5)),
    PredicateLeaf(Predicate("a", Operator.IN_SET, frozenset({1, 2, 3}))),
    PredicateLeaf(Predicate("s", Operator.PREFIX, "séries-ü")),
    ConstNode(True),
    ConstNode(False),
    normalize(And(P("a") == 1, Or(P("b") <= 2, Not(P("c") == "x")))),
    Not(And(P("a") == 1, P("b") == 2)),  # non-normalized trees serialize too
]


class TestDictCodec:
    @pytest.mark.parametrize("tree", SAMPLE_TREES)
    def test_roundtrip(self, tree):
        assert node_from_dict(node_to_dict(tree)) == tree

    def test_dict_form_is_json_compatible(self):
        import json

        tree = normalize(And(P("a").in_([1, 2]), P("b") == "x"))
        data = node_to_dict(tree)
        assert node_from_dict(json.loads(json.dumps(data))) == tree

    def test_unknown_kind_rejected(self):
        with pytest.raises(SubscriptionError):
            node_from_dict({"kind": "xor", "children": []})

    def test_missing_kind_rejected(self):
        with pytest.raises(SubscriptionError):
            node_from_dict({"children": []})

    def test_subscription_roundtrip(self):
        subscription = Subscription(7, And(P("a") == 1, P("b") == 2), owner="alice")
        restored = subscription_from_dict(subscription_to_dict(subscription))
        assert restored == subscription

    @given(strategies.trees())
    @settings(max_examples=60)
    def test_roundtrip_random_trees(self, tree):
        assert node_from_dict(node_to_dict(tree)) == tree


class TestBinaryCodec:
    @pytest.mark.parametrize("tree", SAMPLE_TREES)
    def test_roundtrip(self, tree):
        assert decode_node(encode_node(tree)) == tree

    def test_trailing_bytes_rejected(self):
        blob = encode_node(SAMPLE_TREES[0]) + b"\x00"
        with pytest.raises(SubscriptionError):
            decode_node(blob)

    def test_corrupt_tag_rejected(self):
        with pytest.raises(SubscriptionError):
            decode_node(b"\xff")

    def test_encoding_size_tracks_tree_size(self):
        small = encode_node(normalize(And(P("a") == 1, P("b") == 2)))
        large = encode_node(
            normalize(And(P("a") == 1, P("b") == 2, P("c") == 3, P("d") == 4))
        )
        assert len(large) > len(small)

    @given(strategies.trees())
    @settings(max_examples=60)
    def test_roundtrip_random_trees(self, tree):
        assert decode_node(encode_node(tree)) == tree


class TestOpCodec:
    """The subscription-log operations syncing replicated matcher state."""

    @given(strategies.trees(), st.integers(min_value=0, max_value=1 << 40))
    @settings(max_examples=60)
    def test_register_and_replace_roundtrip_random_trees(self, tree, sub_id):
        subscription = Subscription(sub_id, tree, owner="alice")
        for action in ("register", "replace"):
            data = op_to_dict(action, subscription)
            assert data["op"] == action
            restored_action, payload = op_from_dict(data)
            assert restored_action == action
            assert payload == subscription
            assert payload.owner == "alice"

    def test_ops_are_json_compatible(self):
        import json

        subscription = Subscription(3, And(P("a") == 1, Not(P("b") == 2)))
        for data in (
            op_to_dict("register", subscription),
            op_to_dict("unregister", 3),
            op_to_dict("rebuild"),
        ):
            action, payload = op_from_dict(json.loads(json.dumps(data)))
            assert action in OP_ACTIONS
            if action == "unregister":
                assert payload == 3
            elif action == "rebuild":
                assert payload is None
            else:
                assert payload == subscription

    def test_unregister_roundtrip(self):
        assert op_from_dict(op_to_dict("unregister", 42)) == ("unregister", 42)

    def test_rebuild_roundtrip(self):
        assert op_from_dict(op_to_dict("rebuild")) == ("rebuild", None)

    def test_bad_payloads_rejected(self):
        with pytest.raises(SubscriptionError):
            op_to_dict("register", 7)  # needs a Subscription
        with pytest.raises(SubscriptionError):
            op_to_dict("unregister", "seven")  # needs an int id
        with pytest.raises(SubscriptionError):
            op_to_dict("unregister", True)  # bools are not ids
        with pytest.raises(SubscriptionError):
            op_to_dict("defragment")  # unknown action

    def test_bad_dicts_rejected(self):
        with pytest.raises(SubscriptionError):
            op_from_dict({})
        with pytest.raises(SubscriptionError):
            op_from_dict({"op": "defragment"})
        with pytest.raises(SubscriptionError):
            op_from_dict(None)


class TestSubscriptionObject:
    def test_normalizes_on_construction(self):
        subscription = Subscription(1, Not(P("a") == 1))
        assert subscription.tree.kind == "pred"
        assert subscription.tree.predicate.operator is Operator.NE

    def test_cached_metrics_match_tree(self):
        subscription = Subscription(1, And(P("a") == 1, P("b") == 2))
        assert subscription.pmin == 2
        assert subscription.leaf_count == 2
        assert subscription.size_bytes > 0

    def test_with_tree_keeps_identity(self):
        subscription = Subscription(1, And(P("a") == 1, P("b") == 2), owner="o")
        pruned = subscription.with_tree(normalize(P("a") == 1))
        assert pruned.id == 1
        assert pruned.owner == "o"
        assert pruned.leaf_count == 1

    def test_matches_delegates_to_tree(self):
        from repro.events import Event

        subscription = Subscription(1, And(P("a") == 1, P("b") == 2))
        assert subscription.matches(Event({"a": 1, "b": 2}))
        assert not subscription.matches(Event({"a": 1}))

    def test_requires_int_id(self):
        with pytest.raises(SubscriptionError):
            Subscription("x", P("a") == 1)

    def test_requires_node_tree(self):
        with pytest.raises(SubscriptionError):
            Subscription(1, "not a tree")
