"""Tests for negation normal form and constant folding."""

import pytest
from hypothesis import given, settings

from repro.errors import NormalizationError
from repro.subscriptions.builder import And, Not, Or, P
from repro.subscriptions.nodes import (
    FALSE,
    TRUE,
    AndNode,
    ConstNode,
    NotNode,
    OrNode,
    PredicateLeaf,
)
from repro.subscriptions.normalize import fold_constants, is_normalized, normalize
from repro.subscriptions.predicates import Operator, Predicate

from tests import strategies


def leaf(attribute="a", operator=Operator.EQ, value=1):
    return PredicateLeaf(Predicate(attribute, operator, value))


class TestNegationPushdown:
    def test_not_on_leaf_complements_operator(self):
        norm = normalize(Not(P("a") == 1))
        assert isinstance(norm, PredicateLeaf)
        assert norm.predicate.operator is Operator.NE

    def test_de_morgan_and(self):
        norm = normalize(Not(And(P("a") == 1, P("b") == 2)))
        assert isinstance(norm, OrNode)
        assert all(
            child.predicate.operator is Operator.NE for child in norm.children
        )

    def test_de_morgan_or(self):
        norm = normalize(Not(Or(P("a") == 1, P("b") == 2)))
        assert isinstance(norm, AndNode)

    def test_double_negation_cancels(self):
        norm = normalize(Not(Not(P("a") <= 5)))
        assert isinstance(norm, PredicateLeaf)
        assert norm.predicate.operator is Operator.LE

    def test_not_of_constant(self):
        assert normalize(NotNode(TRUE)) == FALSE
        assert normalize(NotNode(FALSE)) == TRUE


class TestFolding:
    def test_true_child_dropped_from_and(self):
        norm = normalize(AndNode([leaf("a"), TRUE, leaf("b", value=2)]))
        assert isinstance(norm, AndNode)
        assert len(norm.children) == 2

    def test_false_child_kills_and(self):
        assert normalize(AndNode([leaf("a"), FALSE])) == FALSE

    def test_true_child_kills_or(self):
        assert normalize(OrNode([leaf("a"), TRUE])) == TRUE

    def test_false_child_dropped_from_or(self):
        norm = normalize(OrNode([leaf("a"), FALSE, leaf("b", value=2)]))
        assert isinstance(norm, OrNode)
        assert len(norm.children) == 2

    def test_nested_and_flattened(self):
        norm = normalize(AndNode([leaf("a"), AndNode([leaf("b", value=2), leaf("c", value=3)])]))
        assert isinstance(norm, AndNode)
        assert len(norm.children) == 3

    def test_nested_or_flattened(self):
        norm = normalize(OrNode([leaf("a"), OrNode([leaf("b", value=2), leaf("c", value=3)])]))
        assert isinstance(norm, OrNode)
        assert len(norm.children) == 3

    def test_duplicate_children_removed(self):
        norm = normalize(AndNode([leaf("a"), leaf("a")]))
        assert isinstance(norm, PredicateLeaf)

    def test_single_survivor_replaces_connective(self):
        norm = normalize(AndNode([leaf("a"), TRUE]))
        assert isinstance(norm, PredicateLeaf)

    def test_children_sorted_canonically(self):
        one = normalize(AndNode([leaf("b", value=2), leaf("a")]))
        two = normalize(AndNode([leaf("a"), leaf("b", value=2)]))
        assert one == two


class TestIsNormalized:
    def test_accepts_leaf(self):
        assert is_normalized(leaf())

    def test_accepts_whole_tree_constant(self):
        assert is_normalized(TRUE)
        assert is_normalized(FALSE)

    def test_rejects_not_node(self):
        assert not is_normalized(NotNode(leaf()))

    def test_rejects_embedded_constant(self):
        assert not is_normalized(AndNode([leaf(), TRUE]))

    def test_rejects_unary_connective(self):
        assert not is_normalized(AndNode([leaf()]))

    def test_rejects_and_under_and(self):
        assert not is_normalized(
            AndNode([leaf("a"), AndNode([leaf("b", value=2), leaf("c", value=3)])])
        )

    def test_rejects_duplicate_children(self):
        assert not is_normalized(AndNode([leaf("a"), leaf("a")]))

    def test_accepts_alternating_connectives(self):
        tree = AndNode([leaf("a"), OrNode([leaf("b", value=2), leaf("c", value=3)])])
        assert is_normalized(tree)

    @given(strategies.trees())
    @settings(max_examples=60)
    def test_normalize_output_is_normalized(self, tree):
        assert is_normalized(normalize(tree))

    @given(strategies.trees())
    @settings(max_examples=60)
    def test_normalize_is_idempotent(self, tree):
        norm = normalize(tree)
        assert normalize(norm) == norm


class TestSemanticEquivalence:
    @given(strategies.trees(), strategies.events())
    @settings(max_examples=150)
    def test_normalization_preserves_semantics(self, tree, event):
        assert tree.evaluate(event) == normalize(tree).evaluate(event)


class TestFoldConstants:
    def test_removes_true_from_and(self):
        tree = AndNode([leaf("a"), TRUE, leaf("b", value=2)])
        folded = fold_constants(tree)
        assert isinstance(folded, AndNode)
        assert len(folded.children) == 2

    def test_collapses_or_with_true(self):
        assert fold_constants(OrNode([leaf("a"), TRUE])) == TRUE

    def test_flattens_nested_connectives(self):
        tree = OrNode([leaf("a"), OrNode([leaf("b", value=2), leaf("c", value=3)])])
        folded = fold_constants(tree)
        assert isinstance(folded, OrNode)
        assert len(folded.children) == 3

    def test_dedupes_children(self):
        folded = fold_constants(OrNode([leaf("a"), leaf("a")]))
        assert isinstance(folded, PredicateLeaf)

    def test_rejects_not_nodes(self):
        with pytest.raises(NormalizationError):
            fold_constants(NotNode(leaf()))

    def test_preserves_child_order(self):
        tree = AndNode([leaf("b", value=2), TRUE, leaf("a")])
        folded = fold_constants(tree)
        assert [child.predicate.attribute for child in folded.children] == ["b", "a"]
