"""Property tests: batch matching ≡ per-event matching ≡ naive oracle,
with the counting engine maintained **incrementally** (no rebuild calls)
under interleaved register/unregister/replace churn.

These are the correctness contract of the batch-vectorized pipeline:
``CountingMatcher.match_batch`` must produce exactly the match sets of
sequential ``match`` calls and of the loop-based ``NaiveMatcher`` path,
at every point of an arbitrary churn history.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventBatch
from repro.matching.batch import counting_match_batch_rowwise
from repro.matching.counting import CountingMatcher
from repro.matching.naive import NaiveMatcher
from repro.subscriptions.subscription import Subscription

from tests import strategies

#: Churn op codes drawn by the stateful property below.
_OP_REGISTER = "register"
_OP_UNREGISTER = "unregister"
_OP_REPLACE = "replace"


def churn_ops():
    """A random churn history: (op, tree) pairs over a small id space."""
    return st.lists(
        st.tuples(
            st.sampled_from([_OP_REGISTER, _OP_REGISTER, _OP_REPLACE, _OP_UNREGISTER]),
            strategies.trees(),
        ),
        min_size=1,
        max_size=12,
    )


def apply_churn(ops):
    """Apply ``ops`` to a counting engine and a naive oracle in lockstep.

    Register/replace/unregister are resolved against the currently live
    id set so every drawn op is applicable; ids are never recycled, which
    exercises the engines' slot/entry free lists.
    """
    counting = CountingMatcher()
    oracle = NaiveMatcher()
    next_id = 0
    live = []
    for op, tree in ops:
        if op == _OP_REGISTER or not live:
            subscription = Subscription(next_id, tree)
            next_id += 1
            live.append(subscription.id)
            counting.register(subscription)
            oracle.register(subscription)
        elif op == _OP_REPLACE:
            target = live[len(live) // 2]
            replacement = Subscription(target, tree)
            counting.replace(replacement)
            oracle.unregister(target)
            oracle.register(replacement)
        else:  # unregister
            target = live.pop()
            counting.unregister(target)
            oracle.unregister(target)
    return counting, oracle


@given(
    st.lists(strategies.trees(), min_size=1, max_size=8),
    st.lists(strategies.events(), min_size=1, max_size=8),
)
@settings(max_examples=120, deadline=None)
def test_batch_equals_sequential_and_naive(trees, events):
    counting = CountingMatcher()
    naive = NaiveMatcher()
    for index, tree in enumerate(trees):
        subscription = Subscription(index, tree)
        counting.register(subscription)
        naive.register(subscription)
    batched = counting.match_batch(events)
    naive_batched = naive.match_batch(events)
    assert len(batched) == len(events)
    for event, matched in zip(events, batched):
        assert matched == sorted(counting.match(event))
        assert matched == sorted(naive.match(event))
    assert [sorted(ids) for ids in naive_batched] == batched


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=120, deadline=None)
def test_incremental_engine_tracks_oracle_under_churn(ops, events):
    counting, oracle = apply_churn(ops)
    for event in events:
        assert counting.match(event) == sorted(oracle.match(event))
    assert counting.match_batch(events) == [
        sorted(ids) for ids in oracle.match_batch(events)
    ]


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=120, deadline=None)
def test_columnar_probe_equals_per_event_match_under_churn(ops, events):
    """Columnar ``match_batch`` ≡ per-event ``match`` ≡ rowwise probe.

    The strategies draw events with ~80% attribute presence, so the
    columnar presence rows (missing-attribute semantics) are exercised,
    and churn fragments the slot/entry id spaces the probes write into.
    """
    counting, _oracle = apply_churn(ops)
    batch = EventBatch(events)
    columnar = counting.match_batch(batch)
    assert columnar == [counting.match(event) for event in events]
    assert columnar == counting_match_batch_rowwise(counting, events)
    # Sub-batch columns derived by row selection agree with columns
    # built from the picked events directly.
    positions = list(range(0, len(events), 2))
    assert counting.match_batch(batch.subset(positions)) == [
        columnar[position] for position in positions
    ]


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=80, deadline=None)
def test_compaction_is_invisible(ops, events):
    """rebuild() (compaction) never changes match results."""
    counting, _oracle = apply_churn(ops)
    before = counting.match_batch(events)
    counting.rebuild()
    assert counting.match_batch(events) == before


@given(churn_ops())
@settings(max_examples=80, deadline=None)
def test_entry_count_tracks_live_leaves(ops):
    counting, _oracle = apply_churn(ops)
    expected = sum(
        subscription.leaf_count
        for subscription in counting.subscriptions().values()
    )
    assert counting.entry_count == expected


def test_entry_ids_are_recycled_under_replace_churn():
    """Replacing in place must not grow the entry id space."""
    from repro.subscriptions.builder import And, P

    matcher = CountingMatcher()
    matcher.register(Subscription(0, And(P("a") == 1, P("b") <= 2)))
    capacity = matcher._indexes.entry_capacity
    for round_number in range(50):
        matcher.replace(Subscription(0, And(P("a") == round_number, P("b") <= 2)))
    assert matcher._indexes.entry_capacity == capacity


@given(
    st.lists(strategies.trees(), min_size=1, max_size=6),
    st.lists(strategies.events(), min_size=4, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_columnar_chunking_is_invisible(trees, events):
    """Forcing tiny chunks (column row-slicing per chunk) changes nothing."""
    from repro.matching import batch as batch_module

    counting = CountingMatcher()
    for index, tree in enumerate(trees):
        counting.register(Subscription(index, tree))
    expected = counting.match_batch(events)
    original = batch_module._MAX_CHUNK
    batch_module._MAX_CHUNK = 3
    try:
        assert counting.match_batch(EventBatch(events)) == expected
        assert counting_match_batch_rowwise(counting, events) == expected
    finally:
        batch_module._MAX_CHUNK = original


def test_batch_statistics_match_sequential(workload, auction_events,
                                           auction_subscriptions):
    """Batch and sequential paths account identical statistics."""
    events = auction_events.events[:100]
    sequential = CountingMatcher()
    batched = CountingMatcher()
    for subscription in auction_subscriptions[:80]:
        sequential.register(subscription)
        batched.register(subscription)
    for event in events:
        sequential.match(event)
    batched.match_batch(events)
    a, b = sequential.statistics, batched.statistics
    assert (a.events, a.matches, a.candidates, a.tree_evaluations,
            a.fulfilled_predicates) == (
        b.events, b.matches, b.candidates, b.tree_evaluations,
        b.fulfilled_predicates)
