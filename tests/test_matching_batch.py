"""Property tests: batch matching ≡ per-event matching ≡ naive oracle,
with the counting engine maintained **incrementally** (no rebuild calls)
under interleaved register/unregister/replace churn.

These are the correctness contract of the batch-vectorized pipeline:
``CountingMatcher.match_batch`` must produce exactly the match sets of
sequential ``match`` calls and of the loop-based ``NaiveMatcher`` path,
at every point of an arbitrary churn history.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventBatch
from repro.matching.batch import counting_match_batch_rowwise
from repro.matching.counting import CountingMatcher
from repro.matching.naive import NaiveMatcher
from repro.subscriptions.subscription import Subscription

from tests import strategies

#: Churn op codes drawn by the stateful property below.
_OP_REGISTER = "register"
_OP_UNREGISTER = "unregister"
_OP_REPLACE = "replace"


def churn_ops():
    """A random churn history: (op, tree) pairs over a small id space."""
    return st.lists(
        st.tuples(
            st.sampled_from([_OP_REGISTER, _OP_REGISTER, _OP_REPLACE, _OP_UNREGISTER]),
            strategies.trees(),
        ),
        min_size=1,
        max_size=12,
    )


def apply_churn(ops):
    """Apply ``ops`` to a counting engine and a naive oracle in lockstep.

    Register/replace/unregister are resolved against the currently live
    id set so every drawn op is applicable; ids are never recycled, which
    exercises the engines' slot/entry free lists.
    """
    counting = CountingMatcher()
    oracle = NaiveMatcher()
    next_id = 0
    live = []
    for op, tree in ops:
        if op == _OP_REGISTER or not live:
            subscription = Subscription(next_id, tree)
            next_id += 1
            live.append(subscription.id)
            counting.register(subscription)
            oracle.register(subscription)
        elif op == _OP_REPLACE:
            target = live[len(live) // 2]
            replacement = Subscription(target, tree)
            counting.replace(replacement)
            oracle.unregister(target)
            oracle.register(replacement)
        else:  # unregister
            target = live.pop()
            counting.unregister(target)
            oracle.unregister(target)
    return counting, oracle


@given(
    st.lists(strategies.trees(), min_size=1, max_size=8),
    st.lists(strategies.events(), min_size=1, max_size=8),
)
@settings(max_examples=120, deadline=None)
def test_batch_equals_sequential_and_naive(trees, events):
    counting = CountingMatcher()
    naive = NaiveMatcher()
    for index, tree in enumerate(trees):
        subscription = Subscription(index, tree)
        counting.register(subscription)
        naive.register(subscription)
    batched = counting.match_batch(events)
    naive_batched = naive.match_batch(events)
    assert len(batched) == len(events)
    for event, matched in zip(events, batched):
        assert matched == sorted(counting.match(event))
        assert matched == sorted(naive.match(event))
    assert [sorted(ids) for ids in naive_batched] == batched


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=120, deadline=None)
def test_incremental_engine_tracks_oracle_under_churn(ops, events):
    counting, oracle = apply_churn(ops)
    for event in events:
        assert counting.match(event) == sorted(oracle.match(event))
    assert counting.match_batch(events) == [
        sorted(ids) for ids in oracle.match_batch(events)
    ]


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=120, deadline=None)
def test_columnar_probe_equals_per_event_match_under_churn(ops, events):
    """Columnar ``match_batch`` ≡ per-event ``match`` ≡ rowwise probe.

    The strategies draw events with ~80% attribute presence, so the
    columnar presence rows (missing-attribute semantics) are exercised,
    and churn fragments the slot/entry id spaces the probes write into.
    """
    counting, _oracle = apply_churn(ops)
    batch = EventBatch(events)
    columnar = counting.match_batch(batch)
    assert columnar == [counting.match(event) for event in events]
    assert columnar == counting_match_batch_rowwise(counting, events)
    # Sub-batch columns derived by row selection agree with columns
    # built from the picked events directly.
    positions = list(range(0, len(events), 2))
    assert counting.match_batch(batch.subset(positions)) == [
        columnar[position] for position in positions
    ]


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=80, deadline=None)
def test_compaction_is_invisible(ops, events):
    """rebuild() (compaction) never changes match results."""
    counting, _oracle = apply_churn(ops)
    before = counting.match_batch(events)
    counting.rebuild()
    assert counting.match_batch(events) == before


@given(churn_ops())
@settings(max_examples=80, deadline=None)
def test_entry_count_tracks_live_leaves(ops):
    counting, _oracle = apply_churn(ops)
    expected = sum(
        subscription.leaf_count
        for subscription in counting.subscriptions().values()
    )
    assert counting.entry_count == expected


def test_entry_ids_are_recycled_under_replace_churn():
    """Replacing in place must not grow the entry id space."""
    from repro.subscriptions.builder import And, P

    matcher = CountingMatcher()
    matcher.register(Subscription(0, And(P("a") == 1, P("b") <= 2)))
    capacity = matcher._indexes.entry_capacity
    for round_number in range(50):
        matcher.replace(Subscription(0, And(P("a") == round_number, P("b") <= 2)))
    assert matcher._indexes.entry_capacity == capacity


@given(
    st.lists(strategies.trees(), min_size=1, max_size=6),
    st.lists(strategies.events(), min_size=4, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_columnar_chunking_is_invisible(trees, events):
    """Forcing tiny chunks (column row-slicing per chunk) changes nothing."""
    from repro.matching import batch as batch_module

    counting = CountingMatcher()
    for index, tree in enumerate(trees):
        counting.register(Subscription(index, tree))
    expected = counting.match_batch(events)
    original = batch_module._MAX_CHUNK
    batch_module._MAX_CHUNK = 3
    try:
        assert counting.match_batch(EventBatch(events)) == expected
        assert counting_match_batch_rowwise(counting, events) == expected
    finally:
        batch_module._MAX_CHUNK = original


def _statistics_tuple(matcher):
    stats = matcher.statistics
    return (stats.events, stats.matches, stats.candidates,
            stats.tree_evaluations, stats.fulfilled_predicates)


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_vectorized_tree_fallback_equals_scalar_under_churn(ops, events):
    """Vectorized tree evaluation ≡ scalar ``_evaluate_compiled`` ≡ the
    per-event oracle, with bit-identical statistics.

    Two engines built through the same churn history answer the same
    batch with the toggle on and off; a third answers per event.  All
    three must agree on match sets *and* on (matches, candidates,
    tree_evaluations, fulfilled_predicates).
    """
    from repro.matching import batch as batch_module

    vectorized_engine, oracle = apply_churn(ops)
    scalar_engine, _ = apply_churn(ops)
    per_event_engine, _ = apply_churn(ops)
    original = batch_module._VECTORIZE_TREES
    try:
        batch_module._VECTORIZE_TREES = True
        vectorized = vectorized_engine.match_batch(EventBatch(events))
        batch_module._VECTORIZE_TREES = False
        scalar = scalar_engine.match_batch(EventBatch(events))
    finally:
        batch_module._VECTORIZE_TREES = original
    per_event = [per_event_engine.match(event) for event in events]
    assert vectorized == scalar == per_event
    assert vectorized == [sorted(oracle.match(event)) for event in events]
    assert (
        _statistics_tuple(vectorized_engine)
        == _statistics_tuple(scalar_engine)
        == _statistics_tuple(per_event_engine)
    )


@given(
    st.lists(strategies.trees(max_leaves=24), min_size=1, max_size=5),
    st.lists(strategies.events(), min_size=1, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_deep_trees_vectorize_equivalently(trees, events):
    """Deeper/wider general trees than the default strategy draws."""
    counting = CountingMatcher()
    naive = NaiveMatcher()
    for index, tree in enumerate(trees):
        counting.register(Subscription(index, tree))
        naive.register(Subscription(index, tree))
    assert counting.match_batch(EventBatch(events)) == [
        sorted(naive.match(event)) for event in events
    ]


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_pruned_trees_vectorize_equivalently(ops, events):
    """Pruning (dropping an AND child, the paper's generalization) is a
    ``replace``; the compiled program must track it exactly."""
    from repro.subscriptions.nodes import AndNode

    counting, oracle = apply_churn(ops)
    for sub_id, subscription in sorted(counting.subscriptions().items()):
        for path, node in subscription.tree.iter_nodes():
            if isinstance(node, AndNode) and len(node.children) >= 2:
                pruned_node = (
                    node.children[0]
                    if len(node.children) == 2
                    else AndNode(node.children[1:])
                )
                pruned = subscription.tree.replace_at(path, pruned_node)
                replacement = Subscription(sub_id, pruned)
                counting.replace(replacement)
                oracle.unregister(sub_id)
                oracle.register(replacement)
                break
    assert counting.match_batch(EventBatch(events)) == [
        sorted(oracle.match(event)) for event in events
    ]


@given(churn_ops(), st.lists(strategies.events(), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_evaluation_tiers_agree_under_churn(ops, events):
    """Forcing each fallback tier (dense / per-slot / scalar groups)
    changes nothing observable."""
    from repro.matching import batch as batch_module

    counting, oracle = apply_churn(ops)
    expected = [sorted(oracle.match(event)) for event in events]
    forced = [
        # Always dense whenever any tree candidate survives.
        {"_DENSE_EVAL_MIN_DENSITY": 0.0, "_SCALAR_GROUP_MAX_ROWS": 0},
        # Never dense, always per-slot vectorized groups.
        {"_DENSE_EVAL_MIN_DENSITY": 2.0, "_SCALAR_GROUP_MAX_ROWS": 0},
        # Never dense, tiny groups stay scalar.
        {"_DENSE_EVAL_MIN_DENSITY": 2.0, "_SCALAR_GROUP_MAX_ROWS": 10_000},
    ]
    originals = {
        name: getattr(batch_module, name)
        for name in ("_DENSE_EVAL_MIN_DENSITY", "_SCALAR_GROUP_MAX_ROWS")
    }
    try:
        for overrides in forced:
            for name, value in overrides.items():
                setattr(batch_module, name, value)
            assert counting.match_batch(EventBatch(events)) == expected
    finally:
        for name, value in originals.items():
            setattr(batch_module, name, value)


def test_oversized_trees_fall_back_to_scalar(monkeypatch):
    """Trees beyond the program bounds keep the scalar evaluator, and
    the batch path still matches the per-event oracle."""
    from repro.matching import treeval
    from repro.subscriptions.builder import And, Or, P

    monkeypatch.setattr(treeval, "MAX_TREE_DEPTH", 1)
    matcher = CountingMatcher()
    naive = NaiveMatcher()
    tree = Or(And(P("na") <= 2, P("nb") >= 0), And(P("na") >= 5, P("nc") == 1))
    for sub_id in range(3):
        matcher.register(Subscription(sub_id, tree))
        naive.register(Subscription(sub_id, tree))
    assert matcher.tree_slot_count == 3
    assert len(matcher._tree_programs) == 0  # all refused -> scalar
    from repro.events import Event

    events = [Event({"na": 1, "nb": 3}), Event({"na": 9, "nc": 1}), Event({})]
    assert matcher.match_batch(EventBatch(events)) == [
        sorted(naive.match(event)) for event in events
    ]


def test_flags_matrix_skipped_for_flat_only_tables():
    """Flat-only tables without negated entries never allocate flags."""
    from repro.subscriptions.builder import And, Or, P
    from repro.events import Event
    from repro.matching.batch import _BatchRun

    flat = CountingMatcher()
    flat.register(Subscription(0, And(P("na") <= 2, P("nb") >= 0)))
    flat.register(Subscription(1, P("sa") == "alpha"))
    assert _BatchRun(flat).need_flags is False
    assert flat.match_batch([Event({"na": 1, "nb": 1})]) == [[0]]

    negated = CountingMatcher()
    negated.register(Subscription(0, P("na") != 2))
    assert negated.negated_entry_count == 1
    assert _BatchRun(negated).need_flags is True

    treed = CountingMatcher()
    treed.register(
        Subscription(0, And(P("na") <= 2, Or(P("nb") >= 0, P("nc") == 1)))
    )
    assert treed.tree_slot_count == 1
    assert _BatchRun(treed).need_flags is True


def test_batch_statistics_match_sequential(workload, auction_events,
                                           auction_subscriptions):
    """Batch and sequential paths account identical statistics."""
    events = auction_events.events[:100]
    sequential = CountingMatcher()
    batched = CountingMatcher()
    for subscription in auction_subscriptions[:80]:
        sequential.register(subscription)
        batched.register(subscription)
    for event in events:
        sequential.match(event)
    batched.match_batch(events)
    a, b = sequential.statistics, batched.statistics
    assert (a.events, a.matches, a.candidates, a.tree_evaluations,
            a.fulfilled_predicates) == (
        b.events, b.matches, b.candidates, b.tree_evaluations,
        b.fulfilled_predicates)
