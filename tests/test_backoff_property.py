"""Property tests for the reconnect backoff schedule.

:class:`~repro.faults.backoff.BackoffSchedule` is the client's defense
against reconnect thundering herds; the properties that make it safe
are exactly the ones hypothesis can state directly:

* every jittered delay lies in ``[0, cap]`` — no schedule, however
  deep into its retry sequence, waits longer than the cap;
* the *envelope* (the jitter ceiling) is monotone nondecreasing in the
  attempt, bounded by the cap, and starts at ``min(base, cap)``;
* ``delay`` is a pure function of ``(seed, label, attempt)`` —
  independent instances, call order, and repetition all agree — while
  different seeds or labels decorrelate;
* astronomically large attempt numbers neither overflow nor escape the
  cap (the growth loop is clamped).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import BackoffSchedule

_BASES = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
_MULTIPLIERS = st.floats(min_value=1.0, max_value=8.0, allow_nan=False)
_CAPS = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)
_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
_ATTEMPTS = st.integers(min_value=0, max_value=10_000)


@given(base=_BASES, multiplier=_MULTIPLIERS, cap=_CAPS, seed=_SEEDS,
       attempt=_ATTEMPTS)
@settings(max_examples=200)
def test_delay_is_bounded_by_cap(base, multiplier, cap, seed, attempt):
    schedule = BackoffSchedule(
        base=base, multiplier=multiplier, cap=cap, seed=seed
    )
    delay = schedule.delay(attempt)
    assert 0.0 <= delay <= cap


@given(base=_BASES, multiplier=_MULTIPLIERS, cap=_CAPS,
       attempts=st.lists(_ATTEMPTS, min_size=2, max_size=20))
@settings(max_examples=200)
def test_envelope_is_monotone_and_capped(base, multiplier, cap, attempts):
    schedule = BackoffSchedule(base=base, multiplier=multiplier, cap=cap)
    assert schedule.envelope(0) == min(base, cap)
    ordered = sorted(attempts)
    envelopes = [schedule.envelope(a) for a in ordered]
    for earlier, later in zip(envelopes, envelopes[1:]):
        assert earlier <= later
    for envelope in envelopes:
        assert 0.0 <= envelope <= cap


@given(base=_BASES, multiplier=_MULTIPLIERS, cap=_CAPS, seed=_SEEDS,
       label=st.text(min_size=0, max_size=8), attempt=_ATTEMPTS)
@settings(max_examples=200)
def test_delay_is_pure_in_seed_label_attempt(
    base, multiplier, cap, seed, label, attempt
):
    options = dict(base=base, multiplier=multiplier, cap=cap)
    first = BackoffSchedule(seed=seed, label=label, **options)
    second = BackoffSchedule(seed=seed, label=label, **options)
    # Independent instances agree; disturbing one's call history with
    # other attempts must not shift the schedule.
    expected = first.delay(attempt)
    first.delay(attempt + 1)
    first.delay(0)
    assert first.delay(attempt) == expected
    assert second.delay(attempt) == expected
    assert second(attempt) == expected  # __call__ is the same schedule


@given(seed=_SEEDS, attempt=st.integers(min_value=0, max_value=100))
@settings(max_examples=100)
def test_different_seeds_and_labels_decorrelate(seed, attempt):
    options = dict(base=0.05, multiplier=2.0, cap=5.0)
    baseline = BackoffSchedule(seed=seed, **options)
    other_seed = BackoffSchedule(seed=seed + 1, **options)
    other_label = BackoffSchedule(seed=seed, label="other", **options)
    disagreements = sum(
        1
        for a in range(attempt, attempt + 8)
        if baseline.delay(a) != other_seed.delay(a)
        or baseline.delay(a) != other_label.delay(a)
    )
    assert disagreements >= 1  # u(0, x) collisions are measure-zero


@given(attempt=st.integers(min_value=0, max_value=2**63 - 1))
@settings(max_examples=50)
def test_huge_attempts_never_overflow(attempt):
    schedule = BackoffSchedule(base=0.05, multiplier=2.0, cap=5.0, seed=1)
    assert schedule.envelope(attempt) <= 5.0
    assert 0.0 <= schedule.delay(attempt) <= 5.0
