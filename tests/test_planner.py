"""Tests for pruning schedules and prefix replay."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.heuristics import Dimension
from repro.core.planner import PruningSchedule, replay_prefix
from repro.errors import PruningError
from repro.subscriptions.builder import And, Or, P
from repro.subscriptions.subscription import Subscription


@pytest.fixture()
def subscriptions():
    return [
        Subscription(0, And(P("cat") == "a", P("price") <= 10.0, P("flag") == True)),  # noqa: E712
        Subscription(1, And(P("cat") == "b", Or(P("price") <= 5.0, P("price") >= 95.0))),
        Subscription(2, P("cat") == "c"),  # not prunable
    ]


@pytest.fixture()
def schedule(subscriptions, simple_estimator):
    return PruningSchedule.build(subscriptions, simple_estimator, Dimension.NETWORK)


class TestBuild:
    def test_total_counts_all_possible_prunings(self, schedule):
        # sub 0: 2 prunings; sub 1: 1 pruning; sub 2: 0
        assert schedule.total == 3

    def test_prefix_count_rounds(self, schedule):
        assert schedule.prefix_count(0.0) == 0
        assert schedule.prefix_count(1.0) == schedule.total
        assert schedule.prefix_count(0.5) == round(0.5 * schedule.total)

    def test_prefix_count_validates(self, schedule):
        with pytest.raises(PruningError):
            schedule.prefix_count(1.5)
        with pytest.raises(PruningError):
            schedule.prefix_count(-0.1)

    def test_prefix_count_rounds_half_up(self, schedule):
        """Regression: ``round()`` rounds half to even, so with ``total=3``
        a 0.5 proportion was fine but even totals mapped .5 boundaries
        down (``round(0.5 * 5)`` is 2, not 3).  Half-up is the documented
        behaviour."""
        assert schedule.total == 3
        assert schedule.prefix_count(0.5) == 2  # 1.5 rounds up, not to even
        assert schedule.prefix_count(1 / 6) == 1  # 0.5 rounds up to 1

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20))
    @settings(
        max_examples=60,
        deadline=None,
        # prefix_count never mutates the schedule, so sharing the
        # function-scoped fixture across examples is sound.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_prefix_count_monotone(self, schedule, proportions):
        """Non-decreasing proportions yield non-decreasing counts, pinned to
        0 and ``total`` at the endpoints."""
        counts = [schedule.prefix_count(p) for p in sorted(proportions)]
        assert all(0 <= count <= schedule.total for count in counts)
        assert counts == sorted(counts)
        assert schedule.prefix_count(0.0) == 0
        assert schedule.prefix_count(1.0) == schedule.total

    def test_build_is_deterministic(self, subscriptions, simple_estimator):
        a = PruningSchedule.build(subscriptions, simple_estimator, Dimension.NETWORK)
        b = PruningSchedule.build(subscriptions, simple_estimator, Dimension.NETWORK)
        assert [(r.subscription_id, r.op) for r in a.records] == [
            (r.subscription_id, r.op) for r in b.records
        ]


class TestReplay:
    def test_zero_prefix_returns_originals(self, schedule, subscriptions):
        replayed = schedule.replay(0)
        for subscription in subscriptions:
            assert replayed[subscription.id].tree == subscription.tree

    def test_full_prefix_exhausts_prunable_subs(self, schedule):
        replayed = schedule.replay(schedule.total)
        assert replayed[0].leaf_count == 1
        assert replayed[2].leaf_count == 1  # untouched single predicate

    def test_replay_prefix_helper(self, schedule):
        replayed = replay_prefix(schedule, 1.0)
        assert replayed[0].leaf_count == 1

    def test_replay_rejects_negative_count(self, schedule):
        """Regression: ``replay(-1)`` used to slice ``records[:-1]`` and
        silently replay everything but the last pruning."""
        with pytest.raises(PruningError):
            schedule.replay(-1)

    def test_replay_rejects_count_beyond_total(self, schedule):
        """Regression: counts beyond ``total`` used to clamp silently; the
        caller asked for more prunings than the schedule holds and must
        hear about it."""
        with pytest.raises(PruningError):
            schedule.replay(schedule.total + 1)

    def test_sweep_matches_individual_replays(self, schedule):
        counts = [0, 1, 2, schedule.total]
        swept = dict()
        for count, pruned in schedule.sweep(counts):
            swept[count] = {sub_id: sub.tree for sub_id, sub in pruned.items()}
        for count in counts:
            fresh = {sub_id: sub.tree for sub_id, sub in schedule.replay(count).items()}
            assert swept[count] == fresh

    def test_sweep_allows_repeated_counts(self, schedule):
        results = list(schedule.sweep([1, 1, 2]))
        assert len(results) == 3

    def test_sweep_rejects_decreasing_counts(self, schedule):
        with pytest.raises(PruningError):
            list(schedule.sweep([2, 1]))

    def test_sweep_rejects_count_beyond_total(self, schedule):
        with pytest.raises(PruningError):
            list(schedule.sweep([schedule.total + 1]))

    def test_proportions_grid(self, schedule):
        grid = schedule.proportions(5)
        assert grid == [0.0, 0.25, 0.5, 0.75, 1.0]
        with pytest.raises(PruningError):
            schedule.proportions(1)


class TestDimensionsDiffer:
    def test_memory_schedule_uses_bottom_up(self, subscriptions, simple_estimator):
        schedule = PruningSchedule.build(
            subscriptions, simple_estimator, Dimension.MEMORY
        )
        assert schedule.bottom_up_only

    def test_different_dimensions_may_order_differently(
        self, subscriptions, simple_estimator
    ):
        orders = {}
        for dimension in Dimension:
            schedule = PruningSchedule.build(
                subscriptions, simple_estimator, dimension
            )
            orders[dimension] = [r.subscription_id for r in schedule.records]
        # all dimensions exhaust the same set of prunings
        assert all(len(order) == 3 for order in orders.values())
