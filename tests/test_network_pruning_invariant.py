"""Delivery correctness under arbitrary pruning — the post-filtering
guarantee of Sect. 2.2: pruning non-local routing entries may only add
forwarded traffic, never change what clients receive."""


import pytest

from repro.core.heuristics import Dimension
from repro.core.planner import PruningSchedule
from repro.routing.network import BrokerNetwork
from repro.routing.topology import line_topology, star_topology, tree_topology


def register_workload(network, workload, count):
    broker_ids = network.topology.broker_ids
    subscriptions = workload.generate_subscriptions(count)
    for index, subscription in enumerate(subscriptions):
        # Registered in workload order on a fresh network, so the
        # auto-assigned ids coincide with the workload subscription ids.
        network.subscribe(
            broker_ids[index % len(broker_ids)],
            "client-%d" % index,
            subscription.tree,
        )
    return subscriptions


def deliveries_for(network, events):
    broker_ids = network.topology.broker_ids
    outcome = []
    for index, event in enumerate(events):
        result = network.publish(broker_ids[index % len(broker_ids)], event)
        outcome.append(sorted(
            (delivery.client, delivery.subscription_id)
            for delivery in result.deliveries
        ))
    return outcome


@pytest.mark.parametrize(
    "topology_factory",
    [
        lambda: line_topology(5),
        lambda: star_topology(4),
        lambda: tree_topology(2, 2),
    ],
    ids=["line5", "star4", "tree2x2"],
)
@pytest.mark.parametrize("dimension", list(Dimension), ids=lambda d: d.value)
def test_deliveries_invariant_under_pruning(
    topology_factory, dimension, workload, auction_estimator
):
    network = BrokerNetwork(topology_factory())
    subscriptions = register_workload(network, workload, 40)
    events = workload.generate_events(60).events

    baseline = deliveries_for(network, events)
    baseline_report = network.report()

    schedule = PruningSchedule.build(subscriptions, auction_estimator, dimension)
    for proportion in (0.3, 0.7, 1.0):
        pruned = schedule.replay(schedule.prefix_count(proportion))
        per_broker = {}
        for broker_id, broker in network.brokers.items():
            per_broker[broker_id] = {
                entry.subscription_id: pruned[entry.subscription_id].tree
                for entry in broker.non_local_entries()
            }
        network.apply_pruned_tables(per_broker)
        network.reset_statistics()
        assert deliveries_for(network, events) == baseline
        report = network.report()
        assert report.event_messages >= 0
        assert report.deliveries == baseline_report.deliveries


def test_network_load_monotone_under_full_pruning(workload, auction_estimator):
    """Fully pruned tables route at least as many messages as unpruned."""
    network = BrokerNetwork(line_topology(4))
    subscriptions = register_workload(network, workload, 30)
    events = workload.generate_events(50).events

    deliveries_for(network, events)
    base_messages = network.report().event_messages

    schedule = PruningSchedule.build(
        subscriptions, auction_estimator, Dimension.NETWORK
    )
    pruned = schedule.replay(schedule.total)
    per_broker = {
        broker_id: {
            entry.subscription_id: pruned[entry.subscription_id].tree
            for entry in broker.non_local_entries()
        }
        for broker_id, broker in network.brokers.items()
    }
    network.apply_pruned_tables(per_broker)
    network.reset_statistics()
    deliveries_for(network, events)
    assert network.report().event_messages >= base_messages


def test_restore_all_entries_returns_to_baseline(workload, auction_estimator):
    network = BrokerNetwork(line_topology(3))
    subscriptions = register_workload(network, workload, 20)
    events = workload.generate_events(40).events
    deliveries_for(network, events)
    base_messages = network.report().event_messages

    schedule = PruningSchedule.build(
        subscriptions, auction_estimator, Dimension.MEMORY
    )
    pruned = schedule.replay(schedule.total)
    per_broker = {
        broker_id: {
            entry.subscription_id: pruned[entry.subscription_id].tree
            for entry in broker.non_local_entries()
        }
        for broker_id, broker in network.brokers.items()
    }
    network.apply_pruned_tables(per_broker)
    network.restore_all_entries()
    network.reset_statistics()
    deliveries_for(network, events)
    assert network.report().event_messages == base_messages
