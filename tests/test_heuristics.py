"""Tests for the three dimension heuristics and their priority keys."""

import pytest

from repro.core.heuristics import (
    DIMENSION_ORDERS,
    Dimension,
    HeuristicVector,
    PruningHeuristics,
)
from repro.core.ops import PruningState, enumerate_prunings
from repro.errors import PruningError
from repro.subscriptions.builder import And, P
from repro.subscriptions.metrics import memory_bytes, pmin
from repro.subscriptions.subscription import Subscription


@pytest.fixture()
def heuristics(simple_estimator):
    return PruningHeuristics(simple_estimator, Dimension.NETWORK)


def make_state(tree):
    return PruningState(Subscription(1, tree))


class TestVectors:
    def test_delta_mem_matches_size_difference(self, heuristics):
        state = make_state(And(P("cat") == "a", P("price") <= 10.0))
        original_estimate, original_pmin = heuristics.reference(state)
        op = enumerate_prunings(state.current)[0]
        vector, pruned = heuristics.vector(
            state, op, original_estimate, original_pmin
        )
        assert vector.mem == memory_bytes(state.current) - memory_bytes(pruned)
        assert vector.mem > 0

    def test_delta_eff_is_pmin_difference_to_original(self, heuristics):
        state = make_state(And(P("cat") == "a", P("price") <= 10.0, P("flag") == True))  # noqa: E712
        original_estimate, original_pmin = heuristics.reference(state)
        assert original_pmin == 3
        op = enumerate_prunings(state.current)[0]
        vector, pruned = heuristics.vector(state, op, original_estimate, original_pmin)
        assert vector.eff == pmin(pruned) - 3 == -1

    def test_delta_sel_is_max_componentwise_increase(self, heuristics, simple_estimator):
        tree = And(P("cat") == "a", P("price") <= 10.0)
        state = make_state(tree)
        original_estimate, original_pmin = heuristics.reference(state)
        op = enumerate_prunings(state.current)[0]
        vector, pruned = heuristics.vector(state, op, original_estimate, original_pmin)
        pruned_estimate = simple_estimator.estimate(pruned)
        expected = max(
            pruned_estimate.min - original_estimate.min,
            pruned_estimate.avg - original_estimate.avg,
            pruned_estimate.max - original_estimate.max,
        )
        assert vector.sel == pytest.approx(expected)
        assert vector.sel >= 0.0

    def test_references_use_original_after_pruning(self, heuristics):
        """After a pruning, Δsel/Δeff still compare against the original."""
        state = make_state(
            And(P("cat") == "a", P("price") <= 10.0, P("flag") == True)  # noqa: E712
        )
        original_estimate, original_pmin = heuristics.reference(state)
        first_op = enumerate_prunings(state.current)[0]
        _vector, pruned = heuristics.vector(
            state, first_op, original_estimate, original_pmin
        )
        state.record(first_op, pruned)
        second_op = enumerate_prunings(state.current)[0]
        vector, pruned2 = heuristics.vector(
            state, second_op, original_estimate, original_pmin
        )
        # pmin went from 3 to 1 over two prunings; Δeff reflects the total
        assert vector.eff == pmin(pruned2) - original_pmin == -2


class TestKeys:
    def test_network_prefers_smaller_degradation(self, simple_estimator):
        heuristics = PruningHeuristics(simple_estimator, Dimension.NETWORK)
        low = HeuristicVector(sel=0.1, eff=-2, mem=10)
        high = HeuristicVector(sel=0.5, eff=0, mem=100)
        assert heuristics.key(low) < heuristics.key(high)

    def test_memory_prefers_larger_saving(self, simple_estimator):
        heuristics = PruningHeuristics(simple_estimator, Dimension.MEMORY)
        big = HeuristicVector(sel=0.5, eff=-3, mem=100)
        small = HeuristicVector(sel=0.0, eff=0, mem=10)
        assert heuristics.key(big) < heuristics.key(small)

    def test_throughput_prefers_larger_eff(self, simple_estimator):
        heuristics = PruningHeuristics(simple_estimator, Dimension.THROUGHPUT)
        keep = HeuristicVector(sel=0.5, eff=0, mem=10)
        lose = HeuristicVector(sel=0.0, eff=-2, mem=100)
        assert heuristics.key(keep) < heuristics.key(lose)

    def test_ties_broken_by_secondary_dimension(self, simple_estimator):
        heuristics = PruningHeuristics(simple_estimator, Dimension.NETWORK)
        # equal sel; eff breaks the tie (larger eff preferred)
        a = HeuristicVector(sel=0.2, eff=0, mem=1)
        b = HeuristicVector(sel=0.2, eff=-1, mem=99)
        assert heuristics.key(a) < heuristics.key(b)

    def test_third_dimension_breaks_remaining_ties(self, simple_estimator):
        heuristics = PruningHeuristics(simple_estimator, Dimension.NETWORK)
        a = HeuristicVector(sel=0.2, eff=-1, mem=50)
        b = HeuristicVector(sel=0.2, eff=-1, mem=10)
        assert heuristics.key(a) < heuristics.key(b)

    def test_orders_match_paper(self):
        assert DIMENSION_ORDERS[Dimension.NETWORK] == ("sel", "eff", "mem")
        assert DIMENSION_ORDERS[Dimension.MEMORY] == ("mem", "sel", "eff")
        assert DIMENSION_ORDERS[Dimension.THROUGHPUT] == ("eff", "sel", "mem")

    def test_unknown_dimension_rejected(self, simple_estimator):
        with pytest.raises(PruningError):
            PruningHeuristics(simple_estimator, "bogus")
