"""Direct tests of the per-attribute predicate index structures."""

import pytest

from repro.errors import MatchingError
from repro.matching.predicate_index import (
    AttributeIndex,
    PredicateIndexSet,
    value_key,
)
from repro.subscriptions.predicates import Operator, Predicate


def collect(index, value):
    positives, negatives = [], []
    index.collect(value, positives, negatives)
    pos = sorted(int(x) for array in positives for x in array)
    neg = sorted(int(x) for array in negatives for x in array)
    return pos, neg


def net(index, value):
    """Net fulfilled entries (positives minus negatives as multisets)."""
    pos, neg = collect(index, value)
    result = list(pos)
    for entry in neg:
        result.remove(entry)
    return sorted(result)


class TestValueKey:
    def test_bool_and_int_do_not_collide(self):
        assert value_key(True) != value_key(1)

    def test_int_and_float_collide_on_purpose(self):
        assert value_key(5) == value_key(5.0)

    def test_string_kind_tagged(self):
        assert value_key("5") != value_key(5)


class TestEqualityIndexing:
    def test_eq_hit(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.EQ, 5), 0)
        index.finalize()
        assert net(index, 5) == [0]
        assert net(index, 6) == []

    def test_in_set_hits_each_member(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.IN_SET, frozenset({1, 2})), 0)
        index.finalize()
        assert net(index, 1) == [0]
        assert net(index, 2) == [0]
        assert net(index, 3) == []

    def test_ne_subtraction(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.NE, 5), 0)
        index.add(Predicate("a", Operator.NE, 6), 1)
        index.finalize()
        assert net(index, 5) == [1]
        assert net(index, 7) == [0, 1]

    def test_not_in_set_subtracts_any_member(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.NOT_IN_SET, frozenset({1, 2})), 0)
        index.finalize()
        assert net(index, 1) == []
        assert net(index, 2) == []
        assert net(index, 3) == [0]


class TestRangeIndexing:
    @pytest.fixture()
    def index(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.LT, 10), 0)
        index.add(Predicate("a", Operator.LE, 10), 1)
        index.add(Predicate("a", Operator.GT, 10), 2)
        index.add(Predicate("a", Operator.GE, 10), 3)
        index.finalize()
        return index

    def test_below_bound(self, index):
        assert net(index, 5) == [0, 1]

    def test_at_bound(self, index):
        assert net(index, 10) == [1, 3]

    def test_above_bound(self, index):
        assert net(index, 15) == [2, 3]

    def test_string_ranges_are_separate(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.LE, "m"), 0)
        index.add(Predicate("a", Operator.LE, 10), 1)
        index.finalize()
        assert net(index, "a") == [0]
        assert net(index, 5) == [1]

    def test_bool_values_skip_ranges(self, index):
        assert net(index, True) == []


class TestStringIndexing:
    def test_prefix_by_length(self):
        index = AttributeIndex("s")
        index.add(Predicate("s", Operator.PREFIX, "ab"), 0)
        index.add(Predicate("s", Operator.PREFIX, "abc"), 1)
        index.add(Predicate("s", Operator.PREFIX, "zz"), 2)
        index.finalize()
        assert net(index, "abcd") == [0, 1]
        assert net(index, "ab") == [0]
        assert net(index, "a") == []

    def test_not_prefix(self):
        index = AttributeIndex("s")
        index.add(Predicate("s", Operator.NOT_PREFIX, "ab"), 0)
        index.finalize()
        assert net(index, "abX") == []
        assert net(index, "zz") == [0]

    def test_contains_scan(self):
        index = AttributeIndex("s")
        index.add(Predicate("s", Operator.CONTAINS, "bc"), 0)
        index.add(Predicate("s", Operator.NOT_CONTAINS, "bc"), 1)
        index.finalize()
        assert net(index, "abcd") == [0]
        assert net(index, "xyz") == [1]


class TestIndexLifecycle:
    def test_add_after_finalize_allowed(self):
        """Indexes are incrementally maintained; finalize is a no-op."""
        index = AttributeIndex("a")
        index.finalize()
        index.add(Predicate("a", Operator.EQ, 1), 0)
        assert net(index, 1) == [0]

    def test_collect_without_finalize(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.EQ, 1), 0)
        assert net(index, 1) == [0]

    def test_attribute_mismatch_rejected(self):
        index = AttributeIndex("a")
        with pytest.raises(MatchingError):
            index.add(Predicate("b", Operator.EQ, 1), 0)

    def test_finalize_idempotent(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.EQ, 1), 0)
        index.finalize()
        index.finalize()
        assert net(index, 1) == [0]


class TestIncrementalRemoval:
    @pytest.mark.parametrize(
        "predicate, hit_value",
        [
            (Predicate("a", Operator.EQ, 5), 5),
            (Predicate("a", Operator.IN_SET, frozenset({1, 2})), 2),
            (Predicate("a", Operator.NE, 5), 7),
            (Predicate("a", Operator.NOT_IN_SET, frozenset({1, 2})), 3),
            (Predicate("a", Operator.LT, 10), 5),
            (Predicate("a", Operator.LE, 10), 10),
            (Predicate("a", Operator.GT, 10), 15),
            (Predicate("a", Operator.GE, 10), 10),
            (Predicate("a", Operator.LE, "m"), "a"),
            (Predicate("a", Operator.PREFIX, "ab"), "abc"),
            (Predicate("a", Operator.NOT_PREFIX, "ab"), "zz"),
            (Predicate("a", Operator.CONTAINS, "bc"), "abcd"),
            (Predicate("a", Operator.NOT_CONTAINS, "bc"), "xyz"),
        ],
    )
    def test_remove_reverses_add(self, predicate, hit_value):
        index = AttributeIndex("a")
        index.add(predicate, 0)
        assert net(index, hit_value) == [0]
        index.remove(predicate, 0)
        assert net(index, hit_value) == []
        assert len(index) == 0

    def test_remove_keeps_siblings(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.LT, 10), 0)
        index.add(Predicate("a", Operator.LT, 20), 1)
        index.remove(Predicate("a", Operator.LT, 10), 0)
        assert net(index, 5) == [1]

    def test_remove_unknown_entry_rejected(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.EQ, 1), 0)
        with pytest.raises(MatchingError):
            index.remove(Predicate("a", Operator.EQ, 1), 9)

    def test_interleaved_add_remove(self):
        index = AttributeIndex("a")
        index.add(Predicate("a", Operator.GE, 1), 0)
        assert net(index, 3) == [0]
        index.add(Predicate("a", Operator.GE, 2), 1)
        assert net(index, 3) == [0, 1]
        index.remove(Predicate("a", Operator.GE, 1), 0)
        index.add(Predicate("a", Operator.EQ, 3), 2)
        assert net(index, 3) == [1, 2]


class TestPredicateIndexSet:
    def test_assigns_sequential_entries(self):
        index_set = PredicateIndexSet()
        assert index_set.add(Predicate("a", Operator.EQ, 1)) == 0
        assert index_set.add(Predicate("b", Operator.EQ, 2)) == 1
        assert index_set.entry_count == 2

    def test_collect_routes_by_attribute(self):
        index_set = PredicateIndexSet()
        index_set.add(Predicate("a", Operator.EQ, 1))
        index_set.add(Predicate("b", Operator.EQ, 1))
        index_set.finalize()
        positives, negatives = [], []
        index_set.collect("a", 1, positives, negatives)
        assert [int(x) for array in positives for x in array] == [0]

    def test_unknown_attribute_is_noop(self):
        index_set = PredicateIndexSet()
        index_set.finalize()
        positives, negatives = [], []
        index_set.collect("zzz", 1, positives, negatives)
        assert positives == [] and negatives == []

    def test_attribute_names_sorted(self):
        index_set = PredicateIndexSet()
        index_set.add(Predicate("b", Operator.EQ, 1))
        index_set.add(Predicate("a", Operator.EQ, 1))
        assert index_set.attribute_names == ["a", "b"]

    def test_remove_recycles_entry_ids(self):
        index_set = PredicateIndexSet()
        predicate = Predicate("a", Operator.EQ, 1)
        entry = index_set.add(predicate)
        index_set.remove(predicate, entry)
        assert index_set.entry_count == 0
        assert index_set.add(Predicate("a", Operator.EQ, 2)) == entry
        assert index_set.entry_capacity == 1

    def test_remove_drops_empty_attribute(self):
        index_set = PredicateIndexSet()
        predicate = Predicate("a", Operator.EQ, 1)
        entry = index_set.add(predicate)
        index_set.remove(predicate, entry)
        assert index_set.attribute_names == []
