"""Documentation health: required docs exist, intra-repo links resolve.

The same link check runs in the CI ``docs`` job via
``scripts/check_doc_links.py``; running it in the unit suite keeps the
tier-1 gate authoritative locally too.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "scripts" / "check_doc_links.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_doc_links", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_required_docs_exist():
    for relative in ("README.md", "docs/ARCHITECTURE.md", "docs/BENCHMARKS.md"):
        assert (REPO_ROOT / relative).exists(), "%s is missing" % relative


def test_readme_links_docs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/BENCHMARKS.md" in readme


def test_no_broken_intra_repo_links():
    checker = _load_checker()
    failures = [
        (str(doc.relative_to(REPO_ROOT)), target, reason)
        for doc in checker.iter_doc_files(REPO_ROOT)
        for target, reason in checker.broken_links(doc)
    ]
    assert failures == []


def test_checker_detects_broken_links(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "BAD.md"
    doc.write_text(
        "[ok](#anchor) [ok](https://example.org) [bad](nope/missing.md)",
        encoding="utf-8",
    )
    broken = checker.broken_links(doc)
    assert [target for target, _reason in broken] == ["nope/missing.md"]


def test_checker_cli_passes_on_repo():
    completed = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
