"""End-to-end tests of the experiment harness at tiny scale.

These are the integration tests for the reproduction: they run real
sweeps (smaller than the benchmarks) and assert the structural properties
every figure relies on.
"""

import pytest

from repro.core.heuristics import Dimension
from repro.experiments.centralized import CentralizedExperiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.distributed import DistributedExperiment
from repro.experiments.figures import (
    centralized_figures,
    distributed_figures,
    render_figure,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(
        ExperimentConfig(
            seed=11,
            subscription_count=120,
            event_count=60,
            grid_points=4,
            broker_count=4,
            clients_per_broker=2,
        )
    )


@pytest.fixture(scope="module")
def centralized_results(context):
    return CentralizedExperiment(context).run_all()


@pytest.fixture(scope="module")
def distributed_results(context):
    return DistributedExperiment(context).run_all()


class TestCentralized:
    def test_all_dimensions_swept(self, centralized_results, context):
        assert set(centralized_results) == set(context.config.dimensions)
        for points in centralized_results.values():
            assert len(points) == context.config.grid_points

    def test_x_axis_spans_zero_to_one(self, centralized_results):
        for points in centralized_results.values():
            assert points[0].proportion == 0.0
            assert points[-1].proportion == 1.0
            assert points[0].prunings == 0

    def test_association_reduction_monotone(self, centralized_results):
        for points in centralized_results.values():
            reductions = [p.association_reduction for p in points]
            assert reductions == sorted(reductions)
            assert reductions[0] == 0.0
            assert reductions[-1] > 0.3

    def test_matching_fraction_never_decreases(self, centralized_results):
        """Pruning generalizes, so the matching fraction is non-decreasing
        along every sweep (up to exact replay, not noise: it's a count)."""
        for points in centralized_results.values():
            fractions = [p.matching_fraction for p in points]
            for earlier, later in zip(fractions, fractions[1:]):
                assert later >= earlier - 1e-12

    def test_baseline_identical_across_dimensions(self, centralized_results):
        baselines = {
            dimension: points[0].matching_fraction
            for dimension, points in centralized_results.items()
        }
        assert len(set(baselines.values())) == 1

    def test_memory_dimension_reduces_most_early(self, centralized_results):
        """Fig. 1(c): at mid-sweep the memory heuristic's reduction is at
        least as strong as the others'."""
        mid = 1  # 1/3 of the sweep on a 4-point grid
        memory = centralized_results[Dimension.MEMORY][mid].association_reduction
        for dimension in (Dimension.NETWORK, Dimension.THROUGHPUT):
            assert memory >= centralized_results[dimension][mid].association_reduction - 1e-9

    def test_network_dimension_matches_least_at_mid_sweep(self, centralized_results):
        """Fig. 1(b): the network heuristic routes the fewest extra events."""
        mid = 2
        network = centralized_results[Dimension.NETWORK][mid].matching_fraction
        memory = centralized_results[Dimension.MEMORY][mid].matching_fraction
        assert network <= memory + 1e-12

    def test_timings_positive(self, centralized_results):
        for points in centralized_results.values():
            assert all(p.seconds_per_event > 0 for p in points)
            assert all(p.candidates_per_event >= 0 for p in points)


class TestDistributed:
    def test_all_dimensions_swept(self, distributed_results, context):
        assert set(distributed_results) == set(context.config.dimensions)

    def test_deliveries_constant_everywhere(self, distributed_results):
        all_deliveries = {
            p.deliveries for points in distributed_results.values() for p in points
        }
        assert len(all_deliveries) == 1

    def test_network_increase_starts_at_zero_and_grows(self, distributed_results):
        for points in distributed_results.values():
            assert points[0].network_increase == 0.0
            increases = [p.network_increase for p in points]
            for earlier, later in zip(increases, increases[1:]):
                assert later >= earlier - 1e-12

    def test_network_dimension_adds_least_load(self, distributed_results):
        """Fig. 1(e): at every shared grid point the sel heuristic routed
        no more extra messages than the mem heuristic."""
        sel = distributed_results[Dimension.NETWORK]
        mem = distributed_results[Dimension.MEMORY]
        for sel_point, mem_point in zip(sel, mem):
            assert sel_point.network_increase <= mem_point.network_increase + 1e-12

    def test_association_reduction_bounds(self, distributed_results):
        for points in distributed_results.values():
            assert points[0].association_reduction == 0.0
            assert 0.0 < points[-1].association_reduction < 1.0

    def test_seconds_include_transmission_share(self, distributed_results):
        for points in distributed_results.values():
            for point in points:
                assert point.seconds_per_event >= point.filter_seconds_per_event


class TestFigures:
    def test_centralized_figures_built(self, centralized_results):
        figures = centralized_figures(centralized_results)
        assert set(figures) == {"1a", "1b", "1c"}
        for figure in figures.values():
            assert set(figure.series) == {"sel", "eff", "mem"}
            assert len(figure.xs) == len(figure.series["sel"])

    def test_distributed_figures_built(self, distributed_results):
        figures = distributed_figures(distributed_results)
        assert set(figures) == {"1d", "1e", "1f"}

    def test_render_figure_includes_table_and_plot(self, centralized_results):
        figures = centralized_figures(centralized_results)
        text = render_figure(figures["1b"])
        assert "Fig. 1b" in text
        assert "proportion_of_prunings" in text
        assert "legend" in text
