"""Model-based property tests for bounded-queue backpressure.

Each :class:`~repro.service.backpressure.BoundedDeliveryQueue` policy is
run against a *naive* executable model — an unbounded Python list plus
the policy applied by hand — over random interleavings of puts, gets,
and drains:

* ``drop_oldest`` and ``disconnect`` are deterministic, so the real
  queue must match the model exactly: staged order, every dead letter
  (payload *and* reason, in drop order), the terminal flag, and the
  ``enqueued``/``delivered``/``dropped`` counters.
* ``block`` genuinely blocks, so its interleavings run with one real
  producer thread fed from a FIFO command queue while the main thread
  consumes; the invariant is lossless FIFO delivery — every issued
  payload comes out exactly once, in order, with zero dead letters.

A service-level variant replays subscribe/unsubscribe/publish/consume
churn through a full :class:`~repro.service.PubSubService` with a
bounded-queue session, checking the same policy model end-to-end
(including gapless per-session ``delivery_seq`` stamping) against a
:class:`~repro.matching.counting.CountingMatcher` match oracle.
"""

import queue as stdlib_queue
import threading

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.events import Event
from repro.matching.counting import CountingMatcher
from repro.routing.topology import line_topology
from repro.service import (
    BoundedDeliveryQueue,
    DeadLetterSink,
    Notification,
    PubSubService,
)
from repro.subscriptions.subscription import Subscription

from tests.strategies import events, trees


def note(i):
    """A distinguishable notification; ``sequence`` carries the payload."""
    return Notification(Event({"x": i}), i, "alice", "b0", 0, i)


#: One step of a queue interleaving (payloads are assigned in order).
queue_steps = st.lists(
    st.sampled_from(["put", "get", "drain"]), min_size=1, max_size=60
)

capacities = st.integers(min_value=1, max_value=4)


class NaiveQueueModel:
    """The unbounded-list reference model of one policy."""

    def __init__(self, capacity, policy):
        self.capacity = capacity
        self.policy = policy
        self.staged = []  # payloads in FIFO order
        self.dead = []  # (payload, reason) in drop order
        self.disconnected = False
        self.enqueued = 0
        self.delivered = 0

    def put(self, payload):
        """Stage (or refuse) one payload; True iff it was staged."""
        if self.disconnected:
            self.dead.append((payload, "disconnected"))
            return False
        if len(self.staged) >= self.capacity:
            if self.policy == "drop_oldest":
                self.dead.append((self.staged.pop(0), "drop_oldest"))
            else:  # disconnect
                self.disconnected = True
                self.dead.append((payload, "disconnect"))
                return False
        self.staged.append(payload)
        self.enqueued += 1
        return True

    def get(self):
        if not self.staged:
            return None
        self.delivered += 1
        return self.staged.pop(0)

    def drain(self):
        staged, self.staged = self.staged, []
        self.delivered += len(staged)
        return staged


@pytest.mark.parametrize("policy", ["drop_oldest", "disconnect"])
@given(script=queue_steps, capacity=capacities)
@settings(max_examples=60, deadline=None)
def test_queue_matches_naive_model(policy, script, capacity):
    real = BoundedDeliveryQueue(capacity, policy=policy)
    model = NaiveQueueModel(capacity, policy)
    payload = 0

    for op in script:
        if op == "put":
            # ``put`` returns True iff the model staged this payload.
            assert real.put(note(payload)) == model.put(payload)
            payload += 1
        elif op == "get":
            got = real.get(timeout=0)
            expected = model.get()
            assert (got.sequence if got is not None else None) == expected
        else:
            assert [n.sequence for n in real.drain()] == model.drain()
        assert real.depth == len(model.staged)
        assert real.disconnected == model.disconnected

    # Final state: staged order, dead letters (payload, reason, order),
    # and counters all match the model exactly.
    assert [n.sequence for n in real.drain()] == model.drain()
    assert [
        (letter.notification.sequence, letter.reason)
        for letter in real.dead_letter.letters
    ] == model.dead
    assert real.enqueued == model.enqueued
    assert real.delivered == model.delivered
    assert real.dropped == len(model.dead)


@pytest.mark.timeout(120)
@given(script=queue_steps, capacity=capacities)
@settings(max_examples=15, deadline=None)
def test_block_policy_is_lossless_fifo(script, capacity):
    """``block``: every payload is delivered exactly once, in order.

    One producer thread executes the puts in issue order (blocking when
    the queue is full); the main thread consumes.  Because consuming is
    the only thing that frees a slot, ``get`` with a generous timeout is
    guaranteed to observe ``issued[consumed]`` next.
    """
    real = BoundedDeliveryQueue(capacity, policy="block")
    commands = stdlib_queue.Queue()

    def producer():
        while True:
            payload = commands.get()
            if payload is None:
                return
            real.put(note(payload))

    thread = threading.Thread(target=producer)
    thread.start()
    issued = []
    consumed = 0
    try:
        for op in script:
            if op == "put":
                commands.put(len(issued))
                issued.append(len(issued))
            elif op == "get":
                if consumed < len(issued):
                    got = real.get(timeout=10)
                    assert got is not None and got.sequence == issued[consumed]
                    consumed += 1
                else:
                    # Producer has nothing pending: stays empty.
                    assert real.get(timeout=0.02) is None
            else:
                # Drain order is a prefix-correct FIFO slice.
                for got in real.drain():
                    assert got.sequence == issued[consumed]
                    consumed += 1
        while consumed < len(issued):
            got = real.get(timeout=10)
            assert got is not None and got.sequence == issued[consumed]
            consumed += 1
    finally:
        commands.put(None)
        thread.join(timeout=10)
    assert not thread.is_alive()
    assert consumed == len(issued)
    assert len(real.dead_letter) == 0
    assert real.enqueued == len(issued)
    assert real.delivered == len(issued)


#: One step of the service-level interleaving.
service_steps = st.one_of(
    st.tuples(st.just("subscribe"), trees()),
    st.tuples(st.just("unsubscribe"), st.integers(min_value=0, max_value=999)),
    st.tuples(st.just("publish"), events()),
    st.tuples(st.just("poll"), st.none()),
    st.tuples(st.just("drain"), st.none()),
)


@pytest.mark.parametrize("policy", ["drop_oldest", "disconnect"])
@given(
    script=st.lists(service_steps, min_size=1, max_size=40),
    capacity=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_bounded_session_matches_model_end_to_end(policy, script, capacity):
    dead = DeadLetterSink()
    service = PubSubService(topology=line_topology(1), max_batch=1)
    session = service.connect(
        "b0",
        "subscriber",
        queue_capacity=capacity,
        policy=policy,
        dead_letter=dead,
    )
    publisher = service.connect("b0", "publisher")

    oracle = CountingMatcher()
    model = NaiveQueueModel(capacity, policy)
    handles = []
    sequence = 0  # service-wide, allocated per publish (max_batch=1)
    delivery_seq = 0  # per-session, stamped even on dead-lettered drops
    consumed = []  # keys the model consumed, in order

    def key_of(notification):
        return (
            notification.sequence,
            notification.subscription_id,
            notification.delivery_seq,
        )

    for op, payload in script:
        if op == "subscribe":
            handle = session.subscribe(payload)
            oracle.register(Subscription(handle.id, payload))
            handles.append(handle)
        elif op == "unsubscribe":
            if handles:
                handle = handles.pop(payload % len(handles))
                handle.unsubscribe()
                oracle.unregister(handle.id)
        elif op == "publish":
            # max_batch=1: the publish flushes and dispatches in place.
            # Within one event, the substrate delivers sub ids ascending.
            publisher.publish(payload)
            for sub_id in sorted(oracle.match(payload)):
                model.put((sequence, sub_id, delivery_seq))
                delivery_seq += 1
            sequence += 1
        elif op == "poll":
            got = session.poll(timeout=0)
            expected = model.get()
            if expected is not None:
                consumed.append(expected)
            assert (key_of(got) if got is not None else None) == expected
        else:
            drained = [key_of(n) for n in session.drain()]
            expected_batch = model.drain()
            consumed.extend(expected_batch)
            assert drained == expected_batch
        assert session.queue.depth == len(model.staged)
        assert session.disconnected == model.disconnected

    # Everything still staged drains in model order.
    final_batch = model.drain()
    assert [key_of(n) for n in session.drain()] == final_batch
    consumed.extend(final_batch)
    # Dead letters match the model: payloads, reasons, and drop order.
    assert [
        (key_of(letter.notification), letter.reason) for letter in dead.letters
    ] == model.dead
    # The sink saw exactly what the consumer pulled, in consume order.
    assert [key_of(n) for n in session.sink.notifications] == consumed
    # Gapless per-session delivery_seq: delivered + staged + dead-lettered
    # cover 0..delivery_seq-1 exactly once.
    seen = (
        [n.delivery_seq for n in session.sink.notifications]
        + [letter.notification.delivery_seq for letter in dead.letters]
    )
    assert sorted(seen) == list(range(delivery_seq))
    assert session.delivery_count == delivery_seq
    assert session.queue.dropped == len(model.dead)
