"""Tests of the tree-heavy workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.matching.counting import CountingMatcher
from repro.workloads.tree_heavy import TreeHeavyConfig, TreeHeavyWorkload


@pytest.fixture()
def workload():
    return TreeHeavyWorkload(TreeHeavyConfig(seed=11))


def test_generation_is_deterministic(workload):
    again = TreeHeavyWorkload(TreeHeavyConfig(seed=11))
    first = workload.generate_subscriptions(10)
    second = again.generate_subscriptions(10)
    assert [sub.tree for sub in first] == [sub.tree for sub in second]
    events = workload.generate_events(10).events
    assert [dict(event.items()) for event in events] == [
        dict(event.items()) for event in again.generate_events(10).events
    ]
    other_stream = workload.generate_events(10, stream=1).events
    assert [dict(event.items()) for event in events] != [
        dict(event.items()) for event in other_stream
    ]


def test_every_subscription_is_a_general_tree(workload):
    matcher = CountingMatcher()
    for subscription in workload.generate_subscriptions(40):
        matcher.register(subscription)
    assert matcher.tree_slot_count == 40
    assert len(matcher._tree_programs) == 40


def test_candidate_survival_is_high(workload):
    """Nearly every subscription clears pmin on nearly every event —
    the property that makes this workload fallback-dominated."""
    matcher = CountingMatcher()
    count = 50
    for subscription in workload.generate_subscriptions(count):
        matcher.register(subscription)
    events = workload.generate_events(40).events
    matcher.match_batch(events)
    stats = matcher.statistics
    assert stats.candidates >= 0.9 * count * len(events)
    assert stats.tree_evaluations == stats.candidates
    # Verdicts split: matching is neither vacuous nor empty.
    assert 0 < stats.matches < stats.candidates


def test_leaf_count_grows_with_depth():
    shallow = TreeHeavyWorkload(TreeHeavyConfig(seed=3, depth=1))
    deep = TreeHeavyWorkload(TreeHeavyConfig(seed=3, depth=2))
    shallow_leaves = shallow.generate_subscriptions(1)[0].leaf_count
    deep_leaves = deep.generate_subscriptions(1)[0].leaf_count
    assert shallow_leaves == 3 * 2
    assert deep_leaves == (3 * 2) ** 2


def test_invalid_configs_rejected():
    for bad in (
        TreeHeavyConfig(attribute_count=0),
        TreeHeavyConfig(or_fanout=1),
        TreeHeavyConfig(and_width=1),
        TreeHeavyConfig(depth=0),
        TreeHeavyConfig(survival=0.0),
        TreeHeavyConfig(presence=0.0),
    ):
        with pytest.raises(WorkloadError):
            TreeHeavyWorkload(bad)
