"""Tests for the broker network: propagation, routing, accounting."""

import itertools

import pytest

from repro.errors import RoutingError
from repro.events import Event
from repro.routing.metrics import CostModel
from repro.routing.network import BrokerNetwork
from repro.routing.topology import line_topology, star_topology
from repro.subscriptions.builder import And, P


@pytest.fixture()
def network():
    return BrokerNetwork(line_topology(3))


class TestSubscriptionPropagation:
    def test_subscription_reaches_every_broker(self, network):
        network.subscribe("b0", "alice", P("a") == 1)
        for broker in network.brokers.values():
            assert len(broker.entries) == 1

    def test_interfaces_point_toward_home_broker(self, network):
        subscription = network.subscribe("b0", "alice", P("a") == 1)
        assert network.brokers["b0"].entries[subscription.id].interface.is_client
        assert (
            network.brokers["b1"].entries[subscription.id].interface.name == "b0"
        )
        assert (
            network.brokers["b2"].entries[subscription.id].interface.name == "b1"
        )

    def test_subscription_messages_counted(self, network):
        network.subscribe("b0", "alice", P("a") == 1)
        report = network.report()
        assert report.subscription_messages == 2  # b0->b1, b1->b2
        assert report.subscription_bytes > 0
        assert report.event_messages == 0

    def test_ids_assigned_sequentially(self, network):
        first = network.subscribe("b0", "a", P("a") == 1)
        second = network.subscribe("b1", "b", P("a") == 2)
        assert (first.id, second.id) == (0, 1)

    def test_explicit_id_respected(self, network):
        with pytest.deprecated_call():
            subscription = network.subscribe(
                "b0", "a", P("a") == 1, subscription_id=10
            )
        assert subscription.id == 10
        with pytest.raises(RoutingError):
            network.subscribe("b0", "a", P("a") == 1, subscription_id=5)

    def test_unknown_broker_rejected(self, network):
        with pytest.raises(RoutingError):
            network.subscribe("zz", "a", P("a") == 1)


class TestUnsubscribe:
    def test_removes_entries_everywhere(self, network):
        subscription = network.subscribe("b0", "alice", P("a") == 1)
        network.unsubscribe(subscription.id)
        for broker in network.brokers.values():
            assert not broker.entries

    def test_unknown_subscription_rejected(self, network):
        with pytest.raises(RoutingError):
            network.unsubscribe(99)

    def test_delivery_stops_after_unsubscribe(self, network):
        subscription = network.subscribe("b2", "alice", P("a") == 1)
        assert network.publish("b0", Event({"a": 1})).deliveries
        network.unsubscribe(subscription.id)
        assert not network.publish("b0", Event({"a": 1})).deliveries


class TestEventRouting:
    def test_event_routed_across_line(self, network):
        network.subscribe("b2", "alice", P("a") == 1)
        result = network.publish("b0", Event({"a": 1}))
        assert len(result.deliveries) == 1
        assert result.deliveries[0].client == "alice"
        assert result.event_messages == 2  # two hops

    def test_local_delivery_uses_no_links(self, network):
        network.subscribe("b0", "alice", P("a") == 1)
        result = network.publish("b0", Event({"a": 1}))
        assert len(result.deliveries) == 1
        assert result.event_messages == 0

    def test_non_matching_event_not_forwarded(self, network):
        network.subscribe("b2", "alice", P("a") == 1)
        result = network.publish("b0", Event({"a": 2}))
        assert result.deliveries == []
        assert result.event_messages == 0

    def test_event_not_sent_back_to_origin(self, network):
        network.subscribe("b0", "alice", P("a") == 1)
        network.subscribe("b2", "bob", P("a") == 1)
        result = network.publish("b1", Event({"a": 1}))
        # one message toward each end, none bouncing back
        assert result.event_messages == 2
        assert {delivery.client for delivery in result.deliveries} == {"alice", "bob"}

    def test_star_topology_fanout(self):
        network = BrokerNetwork(star_topology(3))
        for index, leaf in enumerate(["b1", "b2", "b3"]):
            network.subscribe(leaf, "client-%d" % index, P("a") == 1)
        result = network.publish("b0", Event({"a": 1}))
        assert result.event_messages == 3
        assert len(result.deliveries) == 3

    def test_deliveries_match_direct_evaluation(self, network, workload):
        subscriptions = workload.generate_subscriptions(60)
        brokers = itertools.cycle(network.topology.broker_ids)
        registered = {}
        for subscription in subscriptions:
            broker_id = next(brokers)
            stored = network.subscribe(broker_id, "c-%d" % subscription.id, subscription.tree)
            registered[stored.id] = stored
        events = workload.generate_events(80)
        for index, event in enumerate(events):
            result = network.publish(
                network.topology.broker_ids[index % 3], event
            )
            expected = {
                sub_id
                for sub_id, stored in registered.items()
                if stored.tree.evaluate(event)
            }
            got = {delivery.subscription_id for delivery in result.deliveries}
            assert got == expected


class TestPublishMany:
    """publish_many rides publish_batch; accounting must not change."""

    @staticmethod
    def _populated_network(workload):
        network = BrokerNetwork(line_topology(3))
        for index, subscription in enumerate(workload.generate_subscriptions(50)):
            broker_id = network.topology.broker_ids[index % 3]
            network.subscribe(broker_id, "c-%d" % index, subscription.tree)
        return network

    def test_matches_sequential_loop_exactly(self, workload):
        events = workload.generate_events(40)
        batched = self._populated_network(workload)
        sequential = self._populated_network(workload)
        origins = [
            batched.topology.broker_ids[index % 3] for index in range(len(events))
        ]

        batched_results = batched.publish_many(origins, events)
        sequential_results = [
            sequential.publish(origin, event)
            for origin, event in zip(origins, events)
        ]
        assert batched_results == sequential_results

        batched_report = batched.report()
        sequential_report = sequential.report()
        assert batched_report.event_messages == sequential_report.event_messages
        assert batched_report.event_bytes == sequential_report.event_bytes
        assert batched_report.per_link_messages == sequential_report.per_link_messages
        assert batched_report.deliveries == sequential_report.deliveries
        assert (
            batched_report.events_published == sequential_report.events_published
        )

    def test_accepts_infinite_origin_iterables(self, network):
        network.subscribe("b1", "alice", P("a") == 1)
        results = network.publish_many(
            itertools.cycle(["b0", "b1"]),
            [Event({"a": 1}), Event({"a": 1}), Event({"a": 2})],
        )
        assert len(results) == 3
        assert [len(result.deliveries) for result in results] == [1, 1, 0]

    def test_empty(self, network):
        assert network.publish_many([], []) == []


class TestAccounting:
    def test_report_aggregates_and_resets(self, network):
        network.subscribe("b2", "alice", P("a") == 1)
        network.publish("b0", Event({"a": 1}))
        report = network.report()
        assert report.events_published == 1
        assert report.deliveries == 1
        assert report.event_messages == 2
        assert report.filter_seconds > 0
        network.reset_statistics()
        fresh = network.report()
        assert fresh.events_published == 0
        assert fresh.event_messages == 0
        assert fresh.deliveries == 0

    def test_transmission_model(self):
        model = CostModel(bandwidth_bps=8e6, per_message_overhead_s=1e-4)
        # 1000 bytes = 8000 bits at 8 Mbps -> 1 ms + 0.1 ms overhead
        assert model.transmission_seconds(1000) == pytest.approx(0.0011)

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            CostModel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            CostModel(per_message_overhead_s=-1)

    def test_report_properties(self, network):
        network.subscribe("b2", "alice", P("a") == 1)
        network.publish("b0", Event({"a": 1}))
        report = network.report()
        assert report.seconds_per_event > 0
        assert report.messages_per_event == 2.0
        assert report.busiest_links(1)[0][1] == 1
        assert "events_published" in report.as_dict()

    def test_association_metrics(self, network):
        network.subscribe("b0", "alice", And(P("a") == 1, P("b") == 2))
        # 2 leaves at each of 3 brokers
        assert network.association_count == 6
        # non-local at b1 and b2 only
        assert network.non_local_association_count == 4
        assert network.table_size_bytes > 0


class TestShardedBrokers:
    """`shards=` on the network builds sharded brokers with identical
    observable behaviour (deliveries, link accounting, reports)."""

    def test_sharded_network_routes_identically(self):
        results = []
        for shards in (None, 3):
            network = BrokerNetwork(
                line_topology(3), shards=shards, executor="serial"
            )
            network.subscribe("b2", "alice", P("a") >= 1)
            network.subscribe("b0", "bob", And(P("a") >= 2, P("b") == 1))
            events = [Event({"a": value, "b": value % 2}) for value in range(6)]
            published = network.publish_batch("b1", events)
            report = network.report()
            results.append((
                [(r.deliveries, r.event_messages, r.brokers_visited)
                 for r in published],
                report.deliveries,
                report.event_messages,
                sorted(report.per_link_messages.items()),
            ))
        assert results[0] == results[1]
        assert results[0][1] > 0  # the scenario actually delivers

    def test_sharded_broker_matcher_type(self):
        from repro.matching.sharded import ShardedMatcher

        network = BrokerNetwork(line_topology(2), shards=2)
        for broker in network.brokers.values():
            assert isinstance(broker.matcher, ShardedMatcher)
            assert broker.matcher.shard_count == 2

    def test_network_close_is_idempotent_and_unsharded_noop(self):
        sharded = BrokerNetwork(line_topology(2), shards=2)
        sharded.subscribe("b1", "alice", P("a") >= 0)
        assert sharded.publish("b0", Event({"a": 1})).deliveries
        sharded.close()
        sharded.close()
        assert sharded.publish("b0", Event({"a": 2})).deliveries
        plain = BrokerNetwork(line_topology(2))
        plain.close()  # no-op for unsharded matchers
