"""Property tests for the wire protocol: frames, envelopes, codecs.

Round-trips every envelope type through ``encode_frame`` →
``FrameDecoder`` under arbitrary read boundaries (split, partial,
concatenated), pins the malformed-frame semantics (bad payloads are
in-band recoverable errors, framing violations are fatal), and checks
the event/notification codecs are exact.  The final class drives a live
:class:`~repro.transport.server.PubSubServer` with a raw socket to
prove a malformed frame gets a structured ``error`` reply on a
connection that stays usable.
"""

import asyncio
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.events import Event
from repro.routing.topology import line_topology
from repro.service import PubSubService
from repro.service.sinks import Notification
from repro.transport.protocol import (
    ENVELOPE_SCHEMA,
    ENVELOPE_TYPES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    event_envelope,
    event_from_wire,
    event_to_wire,
    notification_from_envelope,
    validate_envelope,
)
from repro.transport.server import PubSubServer

# -- envelope strategies -----------------------------------------------------

_VALUES = {
    "string": st.text(max_size=20),
    "integer": st.integers(min_value=-(2**31), max_value=2**31),
    "boolean": st.booleans(),
    "object": st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.text(max_size=8),
            st.integers(min_value=-100, max_value=100),
            st.booleans(),
        ),
        max_size=4,
    ),
}


def envelope_strategy(kind):
    """Valid envelopes of one type, with optional fields sometimes set."""
    required, optional = ENVELOPE_SCHEMA[kind]
    fields = {name: _VALUES[check[0]] for name, check in required.items()}
    for name, check in optional.items():
        fields[name] = st.one_of(st.none(), _VALUES[check[0]])
    return st.fixed_dictionaries(fields).map(
        lambda draw: {
            "type": kind,
            **{name: value for name, value in draw.items() if value is not None},
        }
    )


any_envelope = st.one_of([envelope_strategy(kind) for kind in ENVELOPE_TYPES])


class TestFrameRoundTrip:
    @given(envelope=any_envelope)
    def test_single_frame_round_trips(self, envelope):
        decoder = FrameDecoder()
        messages = decoder.feed(encode_frame(envelope))
        assert messages == [envelope]
        assert decoder.buffered == 0

    @given(envelopes=st.lists(any_envelope, min_size=1, max_size=6))
    def test_concatenated_frames_round_trip(self, envelopes):
        wire = b"".join(encode_frame(envelope) for envelope in envelopes)
        assert FrameDecoder().feed(wire) == envelopes

    @given(
        envelopes=st.lists(any_envelope, min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=50)
    def test_arbitrary_read_boundaries(self, envelopes, data):
        wire = b"".join(encode_frame(envelope) for envelope in envelopes)
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(wire)), max_size=8
                )
            )
        )
        decoder = FrameDecoder()
        messages = []
        previous = 0
        for cut in cuts + [len(wire)]:
            messages.extend(decoder.feed(wire[previous:cut]))
            previous = cut
        assert messages == envelopes
        assert decoder.buffered == 0

    @given(envelope=any_envelope)
    @settings(max_examples=25)
    def test_byte_at_a_time(self, envelope):
        decoder = FrameDecoder()
        messages = []
        for index in range(len(encode_frame(envelope))):
            messages.extend(decoder.feed(encode_frame(envelope)[index : index + 1]))
        assert messages == [envelope]

    def test_partial_frame_stays_buffered(self):
        frame = encode_frame({"type": "ping", "id": 1})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.buffered == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [{"type": "ping", "id": 1}]


def _raw_frame(payload: bytes) -> bytes:
    return struct.pack("!I", len(payload)) + payload


class TestMalformedFrames:
    def test_invalid_json_is_recoverable_in_band(self):
        decoder = FrameDecoder()
        good = encode_frame({"type": "ping", "id": 2})
        messages = decoder.feed(_raw_frame(b"{nope") + good)
        assert len(messages) == 2
        assert isinstance(messages[0], ProtocolError)
        assert messages[0].recoverable and messages[0].code == "bad-json"
        # The stream resynchronized: the next frame decoded fine.
        assert messages[1] == {"type": "ping", "id": 2}

    def test_invalid_utf8_is_recoverable(self):
        (message,) = FrameDecoder().feed(_raw_frame(b"\xff\xfe\x00"))
        assert isinstance(message, ProtocolError)
        assert message.recoverable

    @pytest.mark.parametrize(
        "payload",
        [
            b"[1,2,3]",                           # not an object
            b'{"no":"type"}',                     # missing type
            b'{"type":"warp"}',                   # unknown type
            b'{"type":"ping"}',                   # missing required field
            b'{"type":"ping","id":"seven"}',      # wrong field kind
            b'{"type":"ack","delivery_seq":true}',  # bool is not an int
            b'{"type":"hello","client":"a","version":1,"last_seen":1.5}',
        ],
    )
    def test_invalid_envelopes_are_recoverable(self, payload):
        (message,) = FrameDecoder().feed(_raw_frame(payload))
        assert isinstance(message, ProtocolError)
        assert message.recoverable and message.code == "bad-envelope"

    def test_oversized_length_prefix_is_fatal(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError) as info:
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))
        assert not info.value.recoverable

    def test_encode_rejects_invalid_envelopes(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "nope"})
        with pytest.raises(ProtocolError):
            encode_frame({"type": "ping"})
        with pytest.raises(ProtocolError):
            validate_envelope("ping")

    def test_encode_rejects_oversized_payloads(self):
        envelope = {
            "type": "publish",
            "id": 0,
            "event": {"blob": "x" * MAX_FRAME_BYTES},
        }
        with pytest.raises(ProtocolError) as info:
            encode_frame(envelope)
        assert not info.value.recoverable


class TestEventCodec:
    @given(
        attributes=st.dictionaries(
            st.text(min_size=1, max_size=10),
            st.one_of(
                st.text(max_size=10),
                st.integers(min_value=-(2**40), max_value=2**40),
                st.booleans(),
                st.floats(allow_nan=False, allow_infinity=False, width=64),
            ),
            max_size=6,
        )
    )
    def test_event_round_trip_is_exact(self, attributes):
        event = Event(attributes)
        wire = json.loads(json.dumps(event_to_wire(event)))
        rebuilt = event_from_wire(wire)
        assert rebuilt.to_dict() == event.to_dict()
        for name, value in event.to_dict().items():
            # bool/int must not blur through JSON.
            assert type(rebuilt[name]) is type(value), name

    def test_bad_event_payloads_raise_protocol_errors(self):
        with pytest.raises(ProtocolError):
            event_from_wire("not-a-dict")
        with pytest.raises(ProtocolError):
            event_from_wire({"": 1})  # empty attribute name
        with pytest.raises(ProtocolError):
            event_from_wire({"x": [1, 2]})  # unsupported value type

    def test_notification_round_trip(self):
        notification = Notification(
            Event({"x": 1, "label": "a"}), 17, "alice", "b2", 5, 42
        )
        envelope = event_envelope(notification)
        validate_envelope(envelope)
        rebuilt = notification_from_envelope(envelope, "alice", "b2")
        assert rebuilt == notification


class TestLiveServerRejection:
    """A malformed frame draws a structured ``error``; the connection
    survives and keeps working — ISSUE satellite 2's end of the deal."""

    @pytest.mark.timeout(60)
    def test_malformed_frame_gets_error_reply_not_disconnect(self):
        async def main():
            service = PubSubService(topology=line_topology(1))
            async with PubSubServer(service, "b0") as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                decoder = FrameDecoder()

                async def read_one():
                    while True:
                        messages = decoder.feed(await reader.read(4096))
                        if messages:
                            return messages[0]

                writer.write(
                    encode_frame(
                        {
                            "type": "hello",
                            "client": "raw",
                            "version": PROTOCOL_VERSION,
                        }
                    )
                )
                welcome = await read_one()
                assert welcome["type"] == "welcome"

                # Garbage payload in an intact frame: error, not EOF.
                writer.write(_raw_frame(b"{broken"))
                error = await read_one()
                assert error["type"] == "error"
                assert error["code"] == "bad-json"

                # A valid but unknown envelope: still an error reply.
                writer.write(_raw_frame(b'{"type":"teleport"}'))
                error = await read_one()
                assert error["type"] == "error"
                assert error["code"] == "bad-envelope"

                # The connection is alive and well.
                writer.write(encode_frame({"type": "ping", "id": 9}))
                pong = await read_one()
                assert pong == {"type": "pong", "id": 9}

                writer.write(encode_frame({"type": "goodbye"}))
                goodbye = await read_one()
                assert goodbye["type"] == "goodbye"
                writer.close()
            service.close()

        asyncio.run(main())

    @pytest.mark.timeout(60)
    def test_oversized_prefix_closes_with_goodbye(self):
        async def main():
            service = PubSubService(topology=line_topology(1))
            async with PubSubServer(service, "b0") as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(struct.pack("!I", MAX_FRAME_BYTES + 1))
                decoder = FrameDecoder()
                seen = []
                while True:
                    data = await reader.read(4096)
                    if not data:
                        break  # the server hung up — after answering
                    seen.extend(decoder.feed(data))
                kinds = [message["type"] for message in seen]
                assert kinds == ["error", "goodbye"]
                assert seen[0]["code"] == "frame-too-large"
                writer.close()
            service.close()

        asyncio.run(main())
