"""Unit tests for bounded delivery queues, dead letters, async sinks.

The model-based policy tests live in ``test_backpressure_property.py``
and the multi-producer soak tests in ``test_service_concurrency.py``;
this file pins the single-threaded (or two-thread) semantics of each
piece: queue policies and counters, dead-letter bookkeeping, the
session-level ``poll``/``drain`` consumer API, and the asyncio bridge.
"""

import asyncio
import threading

import pytest

from repro.errors import ServiceError
from repro.events import Event
from repro.routing.topology import line_topology
from repro.service import (
    AsyncDeliverySink,
    BoundedDeliveryQueue,
    DeadLetterSink,
    Notification,
    POLICIES,
    PubSubService,
)
from repro.service.backpressure import (
    REASON_BLOCK_TIMEOUT,
    REASON_CLOSED,
    REASON_DISCONNECT,
    REASON_DISCONNECTED,
    REASON_DROP_OLDEST,
)
from repro.subscriptions.builder import P


def note(i):
    """A distinguishable notification; ``sequence`` carries the payload."""
    return Notification(Event({"x": i}), i, "alice", "b0", 0, i)


def payloads(notifications):
    return [n.sequence for n in notifications]


class TestBoundedDeliveryQueue:
    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            BoundedDeliveryQueue(0)
        with pytest.raises(ServiceError):
            BoundedDeliveryQueue(4, policy="spill_to_disk")
        assert POLICIES == ("block", "drop_oldest", "disconnect")
        for policy in POLICIES:
            assert BoundedDeliveryQueue(1, policy=policy).policy == policy

    def test_fifo_put_get(self):
        queue = BoundedDeliveryQueue(4)
        for i in range(3):
            assert queue.put(note(i))
        assert queue.depth == 3
        assert payloads([queue.get() for _ in range(3)]) == [0, 1, 2]
        assert queue.depth == 0
        assert queue.get(timeout=0) is None

    def test_counters_and_high_water(self):
        queue = BoundedDeliveryQueue(4)
        for i in range(3):
            queue.put(note(i))
        queue.get()
        queue.put(note(3))
        assert queue.enqueued == 4
        assert queue.delivered == 1
        assert queue.dropped == 0
        assert queue.high_water == 3
        assert queue.depth == 3

    def test_drain_consumes_everything(self):
        queue = BoundedDeliveryQueue(8)
        for i in range(5):
            queue.put(note(i))
        assert payloads(queue.drain()) == [0, 1, 2, 3, 4]
        assert queue.drain() == []
        assert queue.delivered == 5

    def test_drop_oldest_evicts_to_dead_letters(self):
        queue = BoundedDeliveryQueue(2, policy="drop_oldest")
        for i in range(5):
            assert queue.put(note(i))  # accepted: the *oldest* pays
        assert payloads(queue.drain()) == [3, 4]
        letters = queue.dead_letter.letters
        assert payloads([letter.notification for letter in letters]) == [0, 1, 2]
        assert {letter.reason for letter in letters} == {REASON_DROP_OLDEST}
        assert queue.dropped == 3 and queue.enqueued == 5

    def test_disconnect_policy_is_terminal(self):
        queue = BoundedDeliveryQueue(2, policy="disconnect")
        assert queue.put(note(0)) and queue.put(note(1))
        assert not queue.put(note(2))  # overflow disconnects
        assert queue.disconnected
        assert not queue.put(note(3))  # later puts refused too
        reasons = [letter.reason for letter in queue.dead_letter.letters]
        assert reasons == [REASON_DISCONNECT, REASON_DISCONNECTED]
        # Staged items survive the disconnect.
        assert payloads(queue.drain()) == [0, 1]
        assert queue.get(timeout=0) is None

    def test_explicit_disconnect_any_policy(self):
        queue = BoundedDeliveryQueue(4, policy="block")
        queue.put(note(0))
        queue.disconnect()
        assert queue.disconnected
        assert not queue.put(note(1))
        assert queue.dead_letter.letters[0].reason == REASON_DISCONNECTED
        assert payloads(queue.drain()) == [0]

    def test_closed_queue_refuses_puts_keeps_staged(self):
        queue = BoundedDeliveryQueue(4)
        queue.put(note(0))
        queue.close()
        queue.close()  # idempotent
        assert queue.closed
        assert not queue.put(note(1))
        assert queue.dead_letter.letters[0].reason == REASON_CLOSED
        assert payloads([queue.get(timeout=0)]) == [0]
        assert queue.get(timeout=0) is None
        assert queue.get() is None  # closed: no indefinite wait

    @pytest.mark.timeout(30)
    def test_block_waits_for_consumer(self):
        queue = BoundedDeliveryQueue(1, policy="block")
        queue.put(note(0))
        accepted = []

        def producer():
            accepted.append(queue.put(note(1)))

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            # The producer is stuck until we consume.
            assert payloads([queue.get(timeout=5)]) == [0]
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            queue.close()
            thread.join(timeout=5)
        assert accepted == [True]
        assert payloads([queue.get(timeout=0)]) == [1]
        assert len(queue.dead_letter) == 0

    def test_block_timeout_dead_letters(self):
        queue = BoundedDeliveryQueue(1, policy="block")
        queue.put(note(0))
        assert not queue.put(note(1), timeout=0.01)
        letter, = queue.dead_letter.letters
        assert letter.reason == REASON_BLOCK_TIMEOUT
        assert letter.notification.sequence == 1
        assert payloads(queue.drain()) == [0]

    @pytest.mark.timeout(30)
    def test_close_releases_blocked_producer(self):
        queue = BoundedDeliveryQueue(1, policy="block")
        queue.put(note(0))
        results = []

        def producer():
            results.append(queue.put(note(1)))

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            queue.close()
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            queue.close()
            thread.join(timeout=5)
        assert results == [False]
        assert queue.dead_letter.letters[0].reason == REASON_CLOSED

    @pytest.mark.timeout(30)
    def test_disconnect_releases_blocked_producer(self):
        queue = BoundedDeliveryQueue(1, policy="block")
        queue.put(note(0))
        results = []

        def producer():
            results.append(queue.put(note(1)))

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            queue.disconnect()
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            queue.close()
            thread.join(timeout=5)
        assert results == [False]
        assert queue.dead_letter.letters[0].reason == REASON_DISCONNECTED

    def test_repr_mentions_state(self):
        queue = BoundedDeliveryQueue(2, policy="drop_oldest")
        queue.put(note(0))
        text = repr(queue)
        assert "capacity=2" in text and "drop_oldest" in text
        queue.close()
        assert "closed" in repr(queue)


class TestDeadLetterSink:
    def test_record_snapshot_clear(self):
        sink = DeadLetterSink()
        sink.record(note(0), REASON_DROP_OLDEST)
        sink.record(note(1), REASON_CLOSED)
        assert len(sink) == 2
        assert [letter.reason for letter in sink.letters] == [
            REASON_DROP_OLDEST,
            REASON_CLOSED,
        ]
        assert payloads(sink.notifications) == [0, 1]
        # ``letters`` is a snapshot, not a live view.
        sink.letters.append(None)
        assert len(sink) == 2
        sink.clear()
        assert len(sink) == 0 and sink.letters == []

    def test_shared_across_queues(self):
        shared = DeadLetterSink()
        first = BoundedDeliveryQueue(1, policy="drop_oldest", dead_letter=shared)
        second = BoundedDeliveryQueue(1, policy="drop_oldest", dead_letter=shared)
        first.put(note(0)), first.put(note(1))
        second.put(note(2)), second.put(note(3))
        assert payloads(shared.notifications) == [0, 2]


class TestBoundedQueueSessions:
    def make_service(self, **kwargs):
        return PubSubService(topology=line_topology(2), max_batch=100, **kwargs)

    def test_connect_validation(self):
        service = self.make_service()
        with pytest.raises(ServiceError):
            service.connect("b0", "alice", policy="drop_oldest")
        with pytest.raises(ServiceError):
            service.connect("b0", "bob", dead_letter=DeadLetterSink())
        with pytest.raises(ServiceError):
            service.connect("b0", "carol", queue_capacity=0)
        with pytest.raises(ServiceError):
            service.connect("b0", "dave", queue_capacity=4, policy="nope")

    def test_poll_drain_require_queue(self):
        service = self.make_service()
        direct = service.connect("b0", "alice")
        with pytest.raises(ServiceError):
            direct.poll(timeout=0)
        with pytest.raises(ServiceError):
            direct.drain()
        assert direct.queue is None and not direct.disconnected

    def test_queued_session_stages_then_delivers(self):
        service = self.make_service()
        session = service.connect("b0", "alice", queue_capacity=8)
        session.subscribe(P("x") >= 0)
        for x in range(3):
            service.publish("b0", Event({"x": x}))
        service.flush()
        # Nothing reached the sink yet: deliveries are staged.
        assert session.sink.notifications == []
        assert session.queue.depth == 3
        first = session.poll(timeout=0)
        assert first.event["x"] == 0
        rest = session.drain()
        assert [n.event["x"] for n in rest] == [1, 2]
        assert [n.event["x"] for n in session.sink.notifications] == [0, 1, 2]
        assert [n.delivery_seq for n in session.sink.notifications] == [0, 1, 2]
        assert session.delivery_count == 3

    def test_drop_oldest_session_keeps_freshest_window(self):
        dead = DeadLetterSink()
        service = self.make_service()
        session = service.connect(
            "b0",
            "alice",
            queue_capacity=2,
            policy="drop_oldest",
            dead_letter=dead,
        )
        session.subscribe(P("x") >= 0)
        for x in range(5):
            service.publish("b0", Event({"x": x}))
        service.flush()
        assert [n.event["x"] for n in session.drain()] == [3, 4]
        assert [n.notification.event["x"] for n in dead.letters] == [0, 1, 2]
        # Delivered + dead-lettered delivery_seqs form a gapless range.
        seqs = [n.delivery_seq for n in session.sink.notifications]
        seqs += [n.delivery_seq for n in dead.notifications]
        assert sorted(seqs) == list(range(5))

    def test_disconnect_session_goes_terminal(self):
        service = self.make_service()
        session = service.connect(
            "b0", "alice", queue_capacity=1, policy="disconnect"
        )
        session.subscribe(P("x") >= 0)
        for x in range(3):
            service.publish("b0", Event({"x": x}))
        service.flush()
        assert session.disconnected
        assert [n.event["x"] for n in session.drain()] == [0]
        reasons = [
            letter.reason for letter in session.queue.dead_letter.letters
        ]
        assert reasons == [REASON_DISCONNECT, REASON_DISCONNECTED]

    def test_session_close_closes_queue(self):
        service = self.make_service()
        session = service.connect("b0", "alice", queue_capacity=4)
        session.subscribe(P("x") >= 0)
        service.publish("b0", Event({"x": 1}))
        service.flush()
        session.close()
        assert session.queue.closed
        # Staged notifications stay drainable after close.
        assert [n.event["x"] for n in session.drain()] == [1]


class TestAsyncDeliverySink:
    def test_deliver_before_start_rejected(self):
        sink = AsyncDeliverySink(lambda n: None)
        with pytest.raises(ServiceError):
            sink.deliver(note(0))

    def test_round_trip_and_lifecycle(self):
        received = []

        async def handler(notification):
            received.append(notification.sequence)

        async def main():
            sink = AsyncDeliverySink(handler)
            sink.start()
            with pytest.raises(ServiceError):
                sink.start()  # already draining
            for i in range(5):
                sink.deliver(note(i))
            # Nothing is staged yet: deliver() only *schedules* the put
            # on the loop, so a blocked flusher never waits on it.
            assert sink.pending == 0
            await sink.aclose()
            await sink.aclose()  # idempotent
            assert sink.delivered == 5
            # Restartable after aclose.
            sink.start()
            sink.deliver(note(5))
            await sink.aclose()

        asyncio.run(main())
        assert received == [0, 1, 2, 3, 4, 5]

    @pytest.mark.timeout(30)
    def test_threaded_producer_into_event_loop(self):
        received = []

        async def handler(notification):
            received.append(notification.sequence)

        async def main():
            sink = AsyncDeliverySink(handler)
            sink.start()
            thread = threading.Thread(
                target=lambda: [sink.deliver(note(i)) for i in range(20)]
            )
            thread.start()
            await asyncio.get_running_loop().run_in_executor(
                None, thread.join
            )
            await sink.aclose()

        asyncio.run(main())
        assert received == list(range(20))

    def test_service_delivers_through_async_sink(self):
        received = []

        async def handler(notification):
            received.append(notification.event["x"])

        async def main():
            service = PubSubService(
                topology=line_topology(2), max_batch=100
            )
            sink = AsyncDeliverySink(handler)
            sink.start()
            session = service.connect("b1", "alice", sink=sink)
            session.subscribe(P("x") >= 0)
            for x in range(3):
                service.publish("b0", Event({"x": x}))
            service.flush()  # synchronous: enqueues via the running loop
            await sink.aclose()

        asyncio.run(main())
        assert received == [0, 1, 2]


class TestSinkCloseDuringFlight:
    """Satellite-6 regression: a session (or its async sink) torn down
    while a flush is still in flight must surface as a clean
    dead-letter record in the flusher — never as an exception."""

    def test_deliver_after_aclose_dead_letters(self):
        async def main():
            sink = AsyncDeliverySink(lambda n: None)
            sink.start()
            await sink.aclose()
            assert sink.closed
            sink.deliver(note(0))  # late flusher: no raise
            letters = sink.dead_letter.letters
            assert [l.reason for l in letters] == ["sink_closed"]
            assert letters[0].notification.sequence == 0

        asyncio.run(main())

    def test_deliver_after_loop_shutdown_dead_letters(self):
        sink = AsyncDeliverySink(lambda n: None)

        async def main():
            sink.start()

        asyncio.run(main())  # the loop the sink bound to is gone now
        sink.deliver(note(1))
        assert [l.reason for l in sink.dead_letter.letters] == ["loop_closed"]

    def test_shared_dead_letter_sink_is_honored(self):
        shared = DeadLetterSink()

        async def main():
            sink = AsyncDeliverySink(lambda n: None, dead_letter=shared)
            sink.start()
            await sink.aclose()
            sink.deliver(note(2))

        asyncio.run(main())
        assert len(shared) == 1

    @pytest.mark.timeout(30)
    def test_session_close_mid_flush_stays_exception_free(self):
        """The sink closes its own session from the drain handler while
        the flush that fed it is still dispatching: the flush must
        complete normally, with the tail dead-lettered, not raise."""

        received = []

        async def main():
            service = PubSubService(topology=line_topology(2), max_batch=100)
            session_box = {}

            async def handler(notification):
                received.append(notification.event["x"])
                # Tear the session down after the first delivery, while
                # the flusher thread is still mid-dispatch.
                session_box["session"].close()

            sink = AsyncDeliverySink(handler)
            sink.start()
            session = service.connect("b1", "alice", sink=sink)
            session_box["session"] = session
            session.subscribe(P("x") >= 0)
            for x in range(50):
                service.publish("b0", Event({"x": x}))
            # Run the flush in a worker thread (like the transport
            # does) so the loop stays free for the drain task.
            flushed = await asyncio.get_running_loop().run_in_executor(
                None, service.flush
            )
            assert flushed == 50
            await sink.aclose()
            # Deliveries that raced the close were dead-lettered by the
            # sink, not raised into the flusher.
            assert received[0] == 0
            assert len(received) + len(sink.dead_letter) >= 1
            assert all(
                letter.reason in ("sink_closed", "loop_closed")
                for letter in sink.dead_letter.letters
            )

        asyncio.run(main())

    @pytest.mark.timeout(30)
    def test_concurrent_session_close_is_idempotent(self):
        service = PubSubService(topology=line_topology(2), max_batch=4)
        session = service.connect("b1", "alice", queue_capacity=4)
        session.subscribe(P("x") >= 0)
        start = threading.Barrier(5)
        errors = []

        def closer():
            start.wait()
            try:
                session.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert session.closed
        assert service.sessions == ()


class TestDeadLetterTaxonomy:
    """The ``DEAD_LETTER_REASONS`` taxonomy and its counter surface."""

    def test_taxonomy_is_complete_and_stable(self):
        from repro.service import DEAD_LETTER_REASONS
        from repro.service.backpressure import (
            REASON_LOOP_CLOSED,
            REASON_SINK_CLOSED,
        )

        assert DEAD_LETTER_REASONS == (
            REASON_DROP_OLDEST,
            REASON_DISCONNECT,
            REASON_DISCONNECTED,
            REASON_CLOSED,
            REASON_BLOCK_TIMEOUT,
            REASON_SINK_CLOSED,
            REASON_LOOP_CLOSED,
        )
        assert len(set(DEAD_LETTER_REASONS)) == len(DEAD_LETTER_REASONS)

    def test_counters_zero_fill_and_count(self):
        from repro.service import DEAD_LETTER_REASONS

        sink = DeadLetterSink()
        assert sink.counters() == {reason: 0 for reason in DEAD_LETTER_REASONS}
        sink.record(note(0), REASON_DROP_OLDEST)
        sink.record(note(1), REASON_DROP_OLDEST)
        sink.record(note(2), REASON_CLOSED)
        counts = sink.counters()
        assert counts[REASON_DROP_OLDEST] == 2
        assert counts[REASON_CLOSED] == 1
        assert counts[REASON_DISCONNECT] == 0
        assert sum(counts.values()) == 3
        # Reasons outside the taxonomy still count (forward compat).
        sink.record(note(3), "martian")
        assert sink.counters()["martian"] == 1

    def test_every_record_call_site_uses_a_constant(self):
        """No ``dead_letter.record(..., "literal")`` anywhere in src —
        reasons must come from the ``REASON_*`` constants so the
        taxonomy in ``DEAD_LETTER_REASONS`` stays the single source."""
        import ast
        from pathlib import Path

        import repro

        root = Path(repro.__file__).resolve().parent
        call_sites = 0
        for path in sorted(root.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute) and func.attr == "record"
                ):
                    continue
                target = func.value
                named = (
                    isinstance(target, ast.Attribute)
                    and target.attr == "dead_letter"
                ) or (
                    isinstance(target, ast.Name)
                    and target.id == "dead_letter"
                )
                if not named:
                    continue
                call_sites += 1
                assert len(node.args) == 2, (
                    "%s:%d: dead_letter.record() needs (notification, "
                    "reason)" % (path, node.lineno)
                )
                reason = node.args[1]
                assert not (
                    isinstance(reason, ast.Constant)
                    and isinstance(reason.value, str)
                ), (
                    "%s:%d: dead_letter.record() called with a string "
                    "literal reason; use a REASON_* constant"
                    % (path, node.lineno)
                )
        assert call_sites >= 4  # the audit actually saw the call sites
