#!/usr/bin/env python
"""Check intra-repo links in the project's markdown documentation.

Scans ``README.md`` and ``docs/*.md`` for inline markdown links
(``[text](target)``) whose targets are repo-relative paths and fails
when a target file does not exist.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored;
anchors on file targets are stripped before the existence check.

Run from anywhere:

    python scripts/check_doc_links.py

Exit status 0 when all links resolve, 1 otherwise (one line per broken
link).  Used by the CI ``docs`` job and ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown link: [text](target).  Images ![alt](target) match
#: too (the leading ``!`` is simply not captured).  Targets containing
#: spaces or parentheses are out of scope — the docs do not use them.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def iter_doc_files(root: Path) -> Iterable[Path]:
    """The markdown files whose links are checked."""
    readme = root / "README.md"
    if readme.exists():
        yield readme
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def broken_links(doc: Path) -> List[Tuple[str, str]]:
    """``(target, reason)`` for every unresolvable link in ``doc``."""
    broken: List[Tuple[str, str]] = []
    for target in _LINK_PATTERN.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (doc.parent / path_part).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            broken.append((target, "points outside the repository"))
            continue
        if not resolved.exists():
            broken.append((target, "target does not exist"))
    return broken


def main() -> int:
    failures = 0
    for doc in iter_doc_files(REPO_ROOT):
        for target, reason in broken_links(doc):
            print(
                "%s: broken link %r (%s)"
                % (doc.relative_to(REPO_ROOT), target, reason)
            )
            failures += 1
    if failures:
        print("%d broken intra-repo link(s)" % failures)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
