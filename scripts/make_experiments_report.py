#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a real harness run.

Usage:  python scripts/make_experiments_report.py [--scale small] [--seed 42]

Runs all six figures at the given scale, writes CSVs to results/, and
rewrites EXPERIMENTS.md with the measured tables, shape summaries, and
the paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import datetime
import os
import sys

from repro.experiments.config import SCALES, config_for_scale
from repro.experiments.figures import ALL_FIGURE_IDS
from repro.experiments.report import (
    figures_to_markdown,
    summarize,
    write_figures,
)
from repro.experiments.run import run_figures

HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of the evaluation of Bittner & Hinze, *Dimension-Based
Subscription Pruning for Publish/Subscribe Systems* (ICDCS Workshops
2006), Figure 1(a)–(f).

* Generated: {timestamp}
* Scale: `{scale}` — {subscriptions} subscriptions, {events} events,
  {points} grid points (the paper used 200,000 subscriptions and 100,000
  events on five 2 GHz / 512 MB machines over a 10 Mbps LAN; see
  DESIGN.md §4 for why the curve *shapes* are scale-stable).
* Regenerate: `python scripts/make_experiments_report.py --scale {scale}`
  or per figure `python -m repro.experiments.run --figure 1a --scale {scale}`.
* Raw series: `results/fig1[a-f].csv`.

Absolute filtering times are not comparable to the paper (pure Python vs
the authors' native prototype on 2006 hardware); all shape claims are
compared on ratios, orderings, and bend positions.

## Reproduction status per claim

| claim (paper) | status |
|---|---|
| 1(a): eff filters fastest early; mem slowest throughout | **holds** (eff fastest from x=0; mem worst and non-improving) |
| 1(a): sel overtakes eff at ~43% | **weak** — in this engine sel only catches eff near the end of the sweep (see deviations) |
| 1(b)/1(e): load bends latest for sel, earlier for eff, immediately for mem | **holds** (measured bend order sel ≥ eff ≫ mem; mem bends at the first grid step) |
| 1(c)/1(f): mem reduces associations most, by ≤ ~10 points | **holds** (≈9-point advantage mid-sweep, shrinking toward the end) |
| 1(d): sel best overall in the distributed setting; mem no improvement | **holds** (sel reaches the lowest per-event cost; mem never improves on un-optimized) |
| 1(e): end-of-sweep load roughly triples vs baseline (+≈2.0 in the paper) | **holds approximately** (+≈1.0–2.5 depending on scale; baseline sparsity differs) |

## Known deviations and why

* **Fig. 1(a)/(d) crossover position.** The paper sees network-based
  pruning become the fastest filter after ~43% of prunings; here
  throughput-based pruning stays (marginally) fastest for most of the
  sweep.  The crossover position is an engine-constant effect: our
  vectorized fulfilled-predicate counting makes candidate evaluations
  relatively cheaper than in the authors' prototype, so keeping ``pmin``
  high pays off longer.  The paper's own explanation of the crossover
  (selectivity of pruned predicates also matters, Sect. 4.2) is visible
  here as the two curves converging.
* **Fig. 1(b) endpoint.** At x=1 every routing entry holds exactly one
  predicate; the matching fraction converges to the mean selectivity of
  each subscription's most selective surviving predicate (~0.04), not to
  ~1.0 as the paper's plot suggests — their workload's surviving
  predicates were evidently far less selective.  The *ordering* of the
  three curves matches throughout.
* **Absolute numbers.** Pure Python + in-process simulated network vs a
  native prototype on five 2 GHz machines; only ratios are compared.

## Shape summary (measured against the paper's claims)

```
{summary}
```

## Measured series

"""


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="results")
    parser.add_argument("--target", default="EXPERIMENTS.md")
    args = parser.parse_args()

    figures = run_figures(list(ALL_FIGURE_IDS), scale=args.scale, seed=args.seed)
    write_figures(figures, args.out)

    config = config_for_scale(args.scale, seed=args.seed)
    body = HEADER.format(
        timestamp=datetime.date.today().isoformat(),
        scale=args.scale,
        subscriptions=config.subscription_count,
        events=config.event_count,
        points=config.grid_points,
        summary=summarize(figures),
    )
    body += figures_to_markdown(figures, heading_level=3)
    body += "\n"
    with open(args.target, "w") as handle:
        handle.write(body)
    print("wrote %s and %d CSVs to %s/" % (args.target, len(figures), args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
